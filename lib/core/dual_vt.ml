module Params = Ssta_tech.Params
module Gate = Ssta_tech.Gate
module Elmore = Ssta_tech.Elmore
module Corner = Ssta_tech.Corner
module Derivatives = Ssta_tech.Derivatives
module Vt_class = Ssta_tech.Vt_class
module Graph = Ssta_timing.Graph
module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Slack = Ssta_timing.Slack
module Layers = Ssta_correlation.Layers
module Budget = Ssta_correlation.Budget
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist
module Pdf = Ssta_prob.Pdf
module Combine = Ssta_prob.Combine

type assignment = Vt_class.t array

type path_stats = {
  path : Paths.path;
  nominal_delay : float;
  mean : float;
  std : float;
  confidence_point : float;
  total_pdf : Pdf.t;
  worst_case : float;
}

let graph_for ?shift circuit assignment =
  if Array.length assignment <> Netlist.num_nodes circuit then
    invalid_arg "Dual_vt.graph_for: one class per node required";
  Graph.with_params_of circuit (fun id ->
      Vt_class.params_for ?shift assignment.(id))

let analyze_path ?shift ?cache config tables graph placement assignment
    (path : Paths.path) =
  let layers = Config.layers_for config placement in
  (* class-aware coefficient accumulation (cf. Path_coeffs.of_path) *)
  let coeffs = Hashtbl.create 64 in
  let alpha_low = ref 0.0 and alpha_high = ref 0.0 in
  let beta_low = ref 0.0 and beta_high = ref 0.0 in
  let nominal_delay = ref 0.0 in
  let worst = ref 0.0 in
  Array.iter
    (fun id ->
      if not (Graph.is_input graph id) then begin
        let e = Graph.electrical_exn graph id in
        let cls = assignment.(id) in
        (match cls with
        | Vt_class.Low ->
            alpha_low := !alpha_low +. e.Gate.alpha;
            beta_low := !beta_low +. e.Gate.beta
        | Vt_class.High ->
            alpha_high := !alpha_high +. e.Gate.alpha;
            beta_high := !beta_high +. e.Gate.beta);
        nominal_delay := !nominal_delay +. graph.Graph.delay.(id);
        worst :=
          !worst
          +. Elmore.gate_delay e
               (Vt_class.corner_for ?shift ~k:config.Config.corner_k
                  Corner.Worst cls);
        let x, y = Placement.coord placement id in
        let grad = Derivatives.gradient e (Vt_class.params_for ?shift cls) in
        List.iter
          (fun rv ->
            let d = Params.get grad rv in
            for layer = 1 to Layers.num_layers layers - 1 do
              let partition =
                Layers.partition_of_gate layers ~level:layer ~gate_id:id ~x ~y
              in
              let key = (Params.rv_index rv, layer, partition) in
              let prev = try Hashtbl.find coeffs key with Not_found -> 0.0 in
              Hashtbl.replace coeffs key (prev +. d)
            done)
          Params.all_rvs
      end)
    path.Paths.nodes;
  let intra_variance =
    Hashtbl.fold
      (fun (rv_index, layer, _) c acc ->
        let rv = List.nth Params.all_rvs rv_index in
        let s =
          Budget.sigma_of_layer config.Config.budget
            ~total_sigma:(Params.sigma rv) layer
        in
        acc +. (c *. c *. s *. s))
      coeffs 0.0
  in
  let intra_pdf = Intra.pdf_of_variance config intra_variance in
  let inter_pdf =
    Inter.pdf_dual ?cache tables ~alpha_low:!alpha_low
      ~alpha_high:!alpha_high ~beta_low:!beta_low ~beta_high:!beta_high
  in
  let total_pdf =
    Combine.sum ~n:config.Config.quality_intra inter_pdf intra_pdf
  in
  let m = Pdf.moments total_pdf in
  let mean = m.Pdf.m_mean and std = sqrt m.Pdf.m_var in
  { path;
    nominal_delay = !nominal_delay;
    mean;
    std;
    confidence_point = mean +. (config.Config.confidence_sigma *. std);
    total_pdf;
    worst_case = !worst }

let leakage ?shift graph assignment =
  let acc = ref 0.0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      acc :=
        !acc
        +. Vt_class.leakage ?shift
             (Graph.electrical_exn graph id)
             assignment.(id))
    graph.Graph.circuit.Netlist.gates;
  !acc

type result = {
  assignment : assignment;
  high_count : int;
  gate_count : int;
  sigma3_all_low : float;
  sigma3_final : float;
  leakage_all_low : float;
  leakage_final : float;
  met : bool;
  iterations : int;
}

(* 3-sigma point of the statistically worst near-critical path under the
   current assignment, together with that path. *)
let statistical_critical ?shift ?cache config tables placement circuit
    assignment =
  let graph = graph_for ?shift circuit assignment in
  let sta = Sta.of_graph graph in
  let slack = config.Config.confidence *. (0.1 *. sta.Sta.critical_delay) in
  (* a generous deterministic window: statistics shuffle only nearby paths *)
  let slack = Float.max slack (0.01 *. sta.Sta.critical_delay) in
  let enum = Sta.near_critical ~max_paths:100 sta ~slack in
  let worst = ref None in
  List.iter
    (fun p ->
      let stats =
        analyze_path ?shift ?cache config tables graph placement assignment p
      in
      match !worst with
      | None -> worst := Some stats
      | Some best ->
          if stats.confidence_point > best.confidence_point then
            worst := Some stats)
    enum.Paths.paths;
  match !worst with
  | Some stats -> (graph, stats)
  | None -> invalid_arg "Dual_vt: circuit has no paths"

let optimize ?(config = Config.default) ?placement
    ?(shift = Vt_class.default_shift) ?(slack_factor = 2.0)
    ?(max_iterations = 40) ~target circuit =
  if target <= 0.0 then invalid_arg "Dual_vt.optimize: target must be positive";
  if slack_factor < 0.0 then
    invalid_arg "Dual_vt.optimize: slack_factor must be non-negative";
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  let tables = Inter.tables ~vt_shift:shift config in
  (* One kernel cache for the whole optimization: the demotion and
     promotion sweeps re-analyze near-critical paths per assignment, and
     their normalized coefficient directions repeat heavily. *)
  let cache =
    if config.Config.inter_cache then Some (Inter.cache_create tables)
    else None
  in
  let n = Netlist.num_nodes circuit in
  let all_low = Array.make n Vt_class.Low in
  let graph_low, low_stats =
    statistical_critical ~shift ?cache config tables placement circuit all_low
  in
  let leakage_all_low = leakage ~shift graph_low all_low in
  (* Greedy seed: High wherever the deterministic slack can absorb the
     class's delay penalty with margin. *)
  let slacks = Slack.compute graph_low in
  let assignment = Array.make n Vt_class.Low in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let e = Graph.electrical_exn graph_low id in
      let penalty =
        Elmore.gate_delay e (Vt_class.params_for ~shift Vt_class.High)
        -. graph_low.Graph.delay.(id)
      in
      if slacks.Slack.slack.(id) > slack_factor *. penalty then
        assignment.(id) <- Vt_class.High)
    circuit.Netlist.gates;
  (* Demotion loop: pull High gates off the statistical critical path
     until the target holds. *)
  let rec refine iteration =
    let graph, stats =
      statistical_critical ~shift ?cache config tables placement circuit
        assignment
    in
    if stats.confidence_point <= target then (iteration, graph, stats, true)
    else begin
      let demoted = ref 0 in
      Array.iter
        (fun id ->
          if (not (Netlist.is_input circuit id))
             && assignment.(id) = Vt_class.High
          then begin
            assignment.(id) <- Vt_class.Low;
            incr demoted
          end)
        stats.path.Paths.nodes;
      if !demoted = 0 || iteration >= max_iterations then
        (iteration, graph, stats, stats.confidence_point <= target)
      else refine (iteration + 1)
    end
  in
  let iterations, _, stats_after_demote, met = refine 0 in
  (* Promotion pass: spend whatever headroom remains on further gates,
     most-slack first, in chunks, reverting any chunk that breaks the
     target. *)
  let iterations = ref iterations in
  if met then begin
    let candidates =
      Array.to_list circuit.Netlist.gates
      |> List.filter_map (fun (g : Netlist.gate) ->
             let id = g.Netlist.id in
             if assignment.(id) = Vt_class.Low then
               Some (id, slacks.Slack.slack.(id))
             else None)
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.map fst
    in
    let chunk_size =
      Int.max 1 (Netlist.num_gates circuit / 16)
    in
    let rec chunks = function
      | [] -> []
      | l ->
          let rec take k acc = function
            | [] -> (List.rev acc, [])
            | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
            | rest -> (List.rev acc, rest)
          in
          let c, rest = take chunk_size [] l in
          c :: chunks rest
    in
    List.iter
      (fun chunk ->
        List.iter (fun id -> assignment.(id) <- Vt_class.High) chunk;
        incr iterations;
        let _, stats =
          statistical_critical ~shift ?cache config tables placement circuit
            assignment
        in
        if stats.confidence_point > target then
          List.iter (fun id -> assignment.(id) <- Vt_class.Low) chunk)
      (chunks candidates)
  end;
  let graph_final, final_stats =
    statistical_critical ~shift ?cache config tables placement circuit
      assignment
  in
  let met =
    if met then final_stats.confidence_point <= target +. 1e-18 else met
  in
  ignore stats_after_demote;
  let iterations = !iterations in
  let high_count =
    Array.fold_left
      (fun acc (g : Netlist.gate) ->
        if assignment.(g.Netlist.id) = Vt_class.High then acc + 1 else acc)
      0 circuit.Netlist.gates
  in
  { assignment;
    high_count;
    gate_count = Netlist.num_gates circuit;
    sigma3_all_low = low_stats.confidence_point;
    sigma3_final = final_stats.confidence_point;
    leakage_all_low;
    leakage_final = leakage ~shift graph_final assignment;
    met;
    iterations }
