module Rng = Ssta_prob.Rng
module Stats = Ssta_prob.Stats
module Pdf = Ssta_prob.Pdf
module Params = Ssta_tech.Params
module Elmore = Ssta_tech.Elmore
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Layers = Ssta_correlation.Layers
module Budget = Ssta_correlation.Budget
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist

type sampler = {
  config : Config.t;
  graph : Graph.t;
  layers : Layers.t;
  (* For each node and each spatial layer, the partition it falls in. *)
  partitions : int array array;  (* indexed [node].(spatial layer) *)
  nominal_of : int -> Params.t;
}

let sampler ?(nominal_of = fun _ -> Params.nominal) config graph placement =
  let layers = Config.layers_for config placement in
  let n = Graph.num_nodes graph in
  let partitions =
    Array.init n (fun id ->
        let x, y = Placement.coord placement id in
        Array.init layers.Layers.quad_levels (fun level ->
            Layers.partition_of layers ~level ~x ~y))
  in
  { config; graph; layers; partitions; nominal_of }

(* Draw one value for every (rv, layer, partition) lazily; a Hashtbl per
   sample keeps only the partitions the circuit actually touches. *)
let draw_layer_value s rng cache rv layer partition =
  let key = (Params.rv_index rv * 1_000_003) + (layer * 65_537) + partition in
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
      let sigma =
        Budget.sigma_of_layer s.config.Config.budget
          ~total_sigma:(Params.sigma rv) layer
      in
      let v =
        if sigma <= 0.0 then 0.0
        else if layer = 0 then
          Ssta_prob.Shape.sample s.config.Config.inter_shape rng
            ~bound:s.config.Config.truncation ~mu:0.0 ~sigma
        else
          Rng.truncated_gaussian rng ~mu:0.0 ~sigma
            ~bound:s.config.Config.truncation
      in
      Hashtbl.add cache key v;
      v

let gate_params s rng cache id =
  let num_layers = Layers.num_layers s.layers in
  let nominal = s.nominal_of id in
  let value rv =
    let acc = ref (Params.get nominal rv) in
    for layer = 0 to num_layers - 1 do
      let partition =
        if Layers.is_random_layer s.layers layer then id
        else s.partitions.(id).(layer)
      in
      acc := !acc +. draw_layer_value s rng cache rv layer partition
    done;
    !acc
  in
  { Params.tox = value Params.Tox;
    leff = value Params.Leff;
    vdd = value Params.Vdd;
    vtn = value Params.Vtn;
    vtp = value Params.Vtp }

let sample_gate_delays s rng =
  let cache = Hashtbl.create 1024 in
  Array.init (Graph.num_nodes s.graph) (fun id ->
      if Graph.is_input s.graph id then 0.0
      else
        Elmore.gate_delay (Graph.electrical_exn s.graph id)
          (gate_params s rng cache id))

let path_delay_once s rng (path : Paths.path) =
  let cache = Hashtbl.create 256 in
  Array.fold_left
    (fun acc id ->
      if Graph.is_input s.graph id then acc
      else
        acc
        +. Elmore.gate_delay (Graph.electrical_exn s.graph id)
             (gate_params s rng cache id))
    0.0 path.Paths.nodes

let path_delay_samples s ~n rng path =
  if n < 1 then invalid_arg "Monte_carlo.path_delay_samples: n >= 1";
  Array.init n (fun _ -> path_delay_once s rng path)

let circuit_delay_samples s ~n rng =
  if n < 1 then invalid_arg "Monte_carlo.circuit_delay_samples: n >= 1";
  let g = s.graph in
  Array.init n (fun _ ->
      let delays = sample_gate_delays s rng in
      (* Topological longest path with the sampled per-gate delays. *)
      let labels = Array.make (Graph.num_nodes g) 0.0 in
      for id = 0 to Graph.num_nodes g - 1 do
        if not (Graph.is_input g id) then begin
          let best = ref 0.0 in
          Array.iter
            (fun f -> if labels.(f) > !best then best := labels.(f))
            (Graph.fanins g id);
          labels.(id) <- !best +. delays.(id)
        end
      done;
      Array.fold_left
        (fun acc o -> Float.max acc labels.(o))
        0.0 g.Graph.circuit.Netlist.outputs)

type validation = {
  mean_err : float;
  std_err : float;
  ks : float;
  sampled : Stats.summary;
}

let validate_path ?(n = 20_000) s rng (analysis : Path_analysis.t) =
  let samples = path_delay_samples s ~n rng analysis.Path_analysis.path in
  let sampled = Stats.summarize samples in
  let pdf = analysis.Path_analysis.total_pdf in
  { mean_err = Float.abs (sampled.Stats.mean -. Pdf.mean pdf);
    std_err = Float.abs (sampled.Stats.std -. Pdf.std pdf);
    ks = Stats.ks_against_pdf samples pdf;
    sampled }

let validate_path_sharded ?(n = 20_000) ?pool ?should_stop ~seed s
    (analysis : Path_analysis.t) =
  (* Per-die parameter draws live in a per-call cache, so dies shard
     freely across domains; the shard layout (Mc.run_sharded) makes the
     sample array identical at any worker count. *)
  let r =
    Ssta_prob.Mc.run_sharded ?pool ?should_stop ~n ~seed (fun rng ->
        path_delay_once s rng analysis.Path_analysis.path)
  in
  let samples = r.Ssta_prob.Mc.samples in
  let sampled = r.Ssta_prob.Mc.summary in
  let pdf = analysis.Path_analysis.total_pdf in
  { mean_err = Float.abs (sampled.Stats.mean -. Pdf.mean pdf);
    std_err = Float.abs (sampled.Stats.std -. Pdf.std pdf);
    ks = Stats.ks_against_pdf samples pdf;
    sampled }
