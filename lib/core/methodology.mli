(** The complete methodology of Fig. 1.

    1. Build the timing graph; evaluate nominal delays and derivatives.
    2. Bellman-Ford for the deterministic critical path.
    3. Statistical analysis of that path; extract sigma_C.
    4. Enumerate every path within C * sigma_C of the critical delay.
    5. Statistical analysis of each; rank by the confidence point.

    The result carries everything the paper's Table 2 reports, plus the
    full per-path analyses for the figures.

    Runs can be bounded by an {!Ssta_runtime.Budget.t}.  Breaching a
    budget never aborts the flow: the PDF resolution is tightened first
    (cell cap), then the enumeration is capped, then the per-path
    analysis loop stops at the deadline — each degradation keeps the
    already-computed subset and is recorded in {!field-status}.

    Steps 4 and 5 optionally fan out over an {!Ssta_parallel.Pool.t}:
    enumeration parallelizes per-endpoint stream prefetching, and
    per-path analysis distributes paths one per chunk with private
    health ledgers merged back in path order.  Both reductions are
    scheduling-independent, so a run with a pool returns results —
    PDFs, ranking, ledger, degradations — identical to the sequential
    run; only wall-clock time changes.  Budget deadlines keep working
    under parallelism: the stop predicate is polled cooperatively per
    chunk and a breach keeps the contiguous analyzed prefix. *)

type status =
  | Complete
  | Degraded of Ssta_runtime.Budget.degradation list
      (** what the budget forced the run to give up, in order *)

type t = {
  circuit_name : string;
  num_gates : int;
  config : Config.t;
  sta : Ssta_timing.Sta.t;
  sigma_c : float;  (** std of the det. critical path's total PDF *)
  slack : float;  (** C * sigma_C *)
  truncated : bool;  (** near-critical enumeration hit max_paths *)
  ranked : Ranking.ranked array;  (** all analyzed paths, prob. order *)
  det_critical : Path_analysis.t;  (** analysis of the det. critical path *)
  prob_critical : Ranking.ranked;
  runtime_s : float;  (** wall-clock of the whole flow *)
  status : status;
  health : Ssta_runtime.Health.t;
      (** numerical-health ledger of every PDF operation in the run *)
}

val run :
  ?config:Config.t ->
  ?placement:Ssta_circuit.Placement.t ->
  ?wire:Ssta_tech.Wire.params ->
  ?wire_caps:float array ->
  ?pool:Ssta_parallel.Pool.t ->
  ?screen:
    (sta:Ssta_timing.Sta.t ->
     slack:float ->
     (int -> bool) * (string * int) list) ->
  Ssta_circuit.Netlist.t ->
  t
(** Execute the flow (default config {!Config.default}; default placement
    {!Ssta_circuit.Placement.place}).  When [wire] is given, gate loads
    come from the placement-aware interconnect model
    ({!Ssta_timing.Graph.of_placed}); when [wire_caps] is given (e.g.
    from {!Ssta_circuit.Spef.apply}), each node uses that explicit wire
    capacitance.  The two are mutually exclusive.  [pool] parallelizes
    steps 4–5 without changing any result bit (see the module
    preamble).

    [screen] statically screens step 4: it receives the step-2 STA and
    the step-3 slack and returns a prune hook for
    {!Ssta_timing.Paths.enumerate} plus health counters to record
    (e.g. [Ssta_check.Affine.methodology_screen]).  The hook carries
    the proof obligation documented at [Paths.enumerate ?prune] — it
    must only prune nodes on no near-critical path, so the reported
    paths stay byte-identical; the counters must be
    scheduling-independent. *)

val analyze :
  ?config:Config.t ->
  ?budget:Ssta_runtime.Budget.t ->
  ?cancelled:(unit -> bool) ->
  ?placement:Ssta_circuit.Placement.t ->
  ?wire:Ssta_tech.Wire.params ->
  ?wire_caps:float array ->
  ?pool:Ssta_parallel.Pool.t ->
  ?screen:
    (sta:Ssta_timing.Sta.t ->
     slack:float ->
     (int -> bool) * (string * int) list) ->
  ?sta:Ssta_timing.Sta.t ->
  ?warm:Path_analysis.warm ->
  ?reuse:
    (Ssta_timing.Paths.path ->
     (Path_analysis.t * Ssta_runtime.Health.t) option) ->
  ?record:
    (Ssta_timing.Paths.path ->
     Path_analysis.t ->
     Ssta_runtime.Health.t ->
     unit) ->
  Ssta_circuit.Netlist.t ->
  (t, Ssta_runtime.Ssta_error.t) result
(** Result-returning entry point: like {!run}, but never raises —
    invalid arguments and numerical failures come back as typed errors —
    and enforces [budget] (default {!Ssta_runtime.Budget.unlimited}).
    A budget breach degrades the run (see {!status}) but still returns
    [Ok] with the truthful partial answer.  [pool] as in {!run}.

    [cancelled] is an external cooperative stop hook (a signal latch, a
    server shutdown flag) threaded into the budget tracker: when it
    trips, enumeration and per-path analysis stop at the next poll
    exactly as a deadline breach would, the completed prefix is kept
    and the run comes back [Degraded] — never an exception, never a
    partial write.

    [sta] supplies step 1–2 results precomputed by a long-lived caller
    (it must describe [circuit]; mutually exclusive with [wire] and
    [wire_caps]).  [warm] shares the inter-table/kernel-cache state
    across calls (see {!Path_analysis.warm}); sharing changes no
    analysis bit, and cache counters are then left out of the run's
    health ledger — the warm-state owner accounts for them.

    [reuse]/[record] are the incremental re-analysis hooks
    ([Ssta_check.Impact]).  For every path of step 3/5, [reuse] may
    supply a previously computed analysis together with the private
    health ledger that analysis produced; the caller must guarantee the
    pair is exactly what a fresh [Path_analysis.analyze] of that path
    would produce (analyses are deterministic, so this holds whenever
    the path's delays, partitions and the analysis-relevant
    configuration are unchanged).  [record] is called once per freshly
    analyzed path with its analysis and private ledger.  Both hooks run
    on the calling thread only — never from pool workers — so an
    unsynchronized cache is safe; with correct reuse the returned
    report is byte-identical to a hook-free run. *)

val is_degraded : t -> bool

val degradations : t -> Ssta_runtime.Budget.degradation list
(** Empty for complete runs. *)

val num_critical_paths : t -> int
(** Paths analyzed (Table 2 column 7). *)

val overestimation_pct : t -> float
(** Worst-case vs. the probabilistic critical path's confidence point
    (Table 2 column 5, computed on the worst-case delay of the
    deterministic critical path as the paper does). *)

val find_rank : t -> prob_rank:int -> Ranking.ranked
(** Path at the given probabilistic rank (1-based). *)
