module Elmore = Ssta_tech.Elmore
module Corner = Ssta_tech.Corner

type t = {
  graph : Graph.t;
  labels : float array;
  critical_delay : float;
  critical_path : Paths.path;
}

let of_graph graph =
  let labels = Longest_path.bellman_ford graph in
  let critical_delay = Longest_path.critical_delay graph labels in
  let nodes = Longest_path.critical_path graph labels in
  let critical_path =
    { Paths.nodes; delay = Paths.recompute_delay graph nodes }
  in
  { graph; labels; critical_delay; critical_path }

let analyze ?wire_cap c = of_graph (Graph.of_netlist ?wire_cap c)
let analyze_placed ?wire c pl = of_graph (Graph.of_placed ?wire c pl)

let near_critical ?max_paths ?should_stop ?prune ?pool t ~slack =
  Paths.enumerate ?max_paths ?should_stop ?prune ?pool t.graph
    ~labels:t.labels ~slack

let worst_case_delay ?corner_k t path =
  Corner.path_delay ?k:corner_k Corner.Worst (Paths.path_gates t.graph path)

let pp_summary fmt t =
  Format.fprintf fmt "%s: critical delay %.3f ps over %d gates"
    t.graph.Graph.circuit.Ssta_circuit.Netlist.name
    (Elmore.ps t.critical_delay)
    (Paths.path_gate_count t.graph t.critical_path)
