module Netlist = Ssta_circuit.Netlist

let labels g =
  let n = Graph.num_nodes g in
  let labels = Array.make n 0.0 in
  for id = 0 to n - 1 do
    if not (Graph.is_input g id) then begin
      let best = ref infinity in
      Array.iter
        (fun f -> if labels.(f) < !best then best := labels.(f))
        (Graph.fanins g id);
      let best = if !best = infinity then 0.0 else !best in
      labels.(id) <- best +. g.Graph.delay.(id)
    end
  done;
  labels

let min_delay g labels =
  Array.fold_left
    (fun acc o -> Float.min acc labels.(o))
    infinity g.Graph.circuit.Netlist.outputs

let min_output g labels =
  let best = ref (-1) in
  Array.iter
    (fun o ->
      match !best with
      | -1 -> best := o
      | b -> if labels.(o) < labels.(b) then best := o)
    g.Graph.circuit.Netlist.outputs;
  if !best < 0 then invalid_arg "Shortest_path.min_output: no outputs";
  !best

let min_path g labels =
  let rec trace acc id =
    let acc = id :: acc in
    if Graph.is_input g id then acc
    else begin
      let arrival_before = labels.(id) -. g.Graph.delay.(id) in
      let fanins = Graph.fanins g id in
      let best = ref (-1) in
      Array.iter
        (fun f ->
          if !best < 0
             && Float.abs (labels.(f) -. arrival_before)
                <= 1e-18 +. (1e-12 *. Float.abs arrival_before)
          then best := f)
        fanins;
      if !best < 0 then begin
        Array.iter
          (fun f ->
            match !best with
            | -1 -> best := f
            | b -> if labels.(f) < labels.(b) then best := f)
          fanins;
        if !best < 0 then
          invalid_arg "Shortest_path.min_path: dangling gate"
      end;
      trace acc !best
    end
  in
  Array.of_list (trace [] (min_output g labels))

exception Limit

let enumerate_near_min ?(max_paths = 200_000) g ~labels ~slack =
  if slack < 0.0 then
    invalid_arg "Shortest_path.enumerate_near_min: slack must be >= 0";
  if max_paths < 1 then
    invalid_arg "Shortest_path.enumerate_near_min: max_paths must be >= 1";
  let fastest = min_delay g labels in
  let eps = 1e-15 +. (1e-12 *. Float.abs fastest) in
  let collected = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let rec walk id budget suffix =
    let suffix = id :: suffix in
    if Graph.is_input g id then begin
      if !count >= max_paths then raise Limit;
      incr count;
      let nodes = Array.of_list suffix in
      collected :=
        { Paths.nodes; delay = Paths.recompute_delay g nodes } :: !collected
    end
    else begin
      let arrival_before = labels.(id) -. g.Graph.delay.(id) in
      Array.iter
        (fun u ->
          (* how much slower than the fastest fan-in this choice is *)
          let local_excess = labels.(u) -. arrival_before in
          if local_excess <= budget +. eps then
            walk u (budget -. local_excess) suffix)
        (Graph.fanins g id)
    end
  in
  (try
     Array.iter
       (fun o ->
         let budget = slack -. (labels.(o) -. fastest) in
         if budget >= -.eps then walk o budget [])
       g.Graph.circuit.Netlist.outputs
   with Limit -> truncated := true);
  let paths = List.sort (fun a b -> compare a.Paths.delay b.Paths.delay) !collected in
  { Paths.paths;
    truncated = !truncated;
    critical_delay = fastest;
    slack;
    explored = !count;
    deadline_hit = false }
