module Netlist = Ssta_circuit.Netlist
module Pool = Ssta_parallel.Pool

type path = { nodes : int array; delay : float }

type enumeration = {
  paths : path list;
  truncated : bool;
  critical_delay : float;
  slack : float;
  explored : int;
  deadline_hit : bool;
}

let path_gates g p =
  Array.to_list p.nodes
  |> List.filter_map (fun id ->
         if Graph.is_input g id then None else Some (Graph.electrical_exn g id))

let path_gate_count g p =
  Array.fold_left
    (fun acc id -> if Graph.is_input g id then acc else acc + 1)
    0 p.nodes

let recompute_delay g nodes =
  Array.fold_left (fun acc id -> acc +. g.Graph.delay.(id)) 0.0 nodes

(* ----- best-first enumeration -----

   A candidate is a partial path: a suffix from some node [head] down to
   a primary output, with [tail_delay] the delay of the suffix excluding
   [head].  [bound] = tail_delay + labels(head) is the delay of the best
   full path completing this suffix (the labels are exactly the
   backward-looking optimistic bound), so expanding candidates in
   decreasing [bound] order emits complete paths in decreasing delay
   order: the first K emitted paths are the K longest.  This is what
   makes a [max_paths] budget honest — a capped enumeration is a prefix
   of the uncapped ranking, not an arbitrary subset of it. *)

type cand = {
  bucket : int;  (** optimistic delay bound quantized to the tie tick *)
  depth : int;  (** suffix length — larger is closer to completion *)
  head : int;
  tail_delay : float;
  suffix : int list;  (** [head] first, output last *)
}

(* Priority: larger bound first, compared through a fixed quantization
   grid rather than exactly.  Two partial paths of the same full path
   set accumulate [tail_delay] in different orders, so exact-tied paths
   (ubiquitous in symmetric circuits — c6288 has ~1e20 of them) get
   bounds differing by a few ulp.  Comparing raw floats then orders the
   frontier by that noise, which degenerates into a breadth-first sweep
   of the whole tied cone: on c6288 the search pops tens of millions of
   candidates without ever completing a path.  Bucketing by a fixed tick
   (transitive, unlike an epsilon-compare) restores honest ties, and the
   depth tie-break makes tied exploration depth-first, so every
   completion costs O(path length) pops.  The final suffix comparison
   keeps the order total and deterministic. *)
let cand_before a b =
  a.bucket > b.bucket
  || (a.bucket = b.bucket
      && (a.depth > b.depth
          || (a.depth = b.depth
              && List.compare Int.compare a.suffix b.suffix < 0)))

module Heap = struct
  type t = { mutable items : cand array; mutable size : int }

  let dummy =
    { bucket = min_int;
      depth = 0;
      head = -1;
      tail_delay = 0.0;
      suffix = [] }

  let create () = { items = Array.make 64 dummy; size = 0 }
  let is_empty h = h.size = 0

  let push h c =
    if h.size = Array.length h.items then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.items 0 bigger 0 h.size;
      h.items <- bigger
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.items.(!i) <- c;
    (* sift up *)
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let parent = (!i - 1) / 2 in
      if cand_before h.items.(!i) h.items.(parent) then begin
        let tmp = h.items.(parent) in
        h.items.(parent) <- h.items.(!i);
        h.items.(!i) <- tmp;
        i := parent
      end
      else continue_ := false
    done

  let pop h =
    let top = h.items.(0) in
    h.size <- h.size - 1;
    h.items.(0) <- h.items.(h.size);
    h.items.(h.size) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let best = ref !i in
      if l < h.size && cand_before h.items.(l) h.items.(!best) then best := l;
      if r < h.size && cand_before h.items.(r) h.items.(!best) then best := r;
      if !best <> !i then begin
        let tmp = h.items.(!best) in
        h.items.(!best) <- h.items.(!i);
        h.items.(!i) <- tmp;
        i := !best
      end
      else continue_ := false
    done;
    top
end

(* ----- per-endpoint streams and the deterministic merge -----

   The search decomposes exactly by primary output: a candidate seeded
   at output [o] only ever meets candidates from the same output, so
   the global frontier is the disjoint union of per-endpoint frontiers
   and the global pop order is reconstructible as a k-way merge — at
   every step, the next global pop is the [cand_before]-greatest of the
   per-endpoint heap tops.  Each endpoint's own pop sequence is
   self-contained (expanding a candidate touches only its endpoint's
   heap), so endpoints can run ahead of the merge on worker domains:
   they prefetch pops in batches, and the merge consumes the buffered
   pops in the exact order the historical single-heap search would have
   popped them.  The result is therefore byte-identical to the
   sequential search at any worker count; the pool only decides who
   fills which buffer. *)

type stream = {
  sheap : Heap.t;
  buf : cand Queue.t;  (* prefetched pops, local pop order *)
  mutable live : bool;  (* the heap may still produce pops *)
}

let stream_batch = 64

(* Advance one endpoint's search by up to [want] pops, buffering them.
   Runs on worker domains: touches only this stream's state. *)
let fill g ~labels ~threshold ~bucket_of ~prune ~want s =
  let i = ref 0 in
  while !i < want && not (Heap.is_empty s.sheap) do
    let c = Heap.pop s.sheap in
    if not (Graph.is_input g c.head) then begin
      let tail_delay = c.tail_delay +. g.Graph.delay.(c.head) in
      Array.iter
        (fun u ->
          let bound = tail_delay +. labels.(u) in
          if bound >= threshold && not (prune u) then
            Heap.push s.sheap
              { bucket = bucket_of bound;
                depth = c.depth + 1;
                head = u;
                tail_delay;
                suffix = u :: c.suffix })
        (Graph.fanins g c.head)
    end;
    Queue.push c s.buf;
    incr i
  done;
  if Heap.is_empty s.sheap then s.live <- false

let enumerate ?(max_paths = 200_000) ?(should_stop = fun () -> false)
    ?(prune = fun _ -> false) ?pool g ~labels ~slack =
  if slack < 0.0 then invalid_arg "Paths.enumerate: slack must be >= 0";
  if max_paths < 1 then invalid_arg "Paths.enumerate: max_paths must be >= 1";
  let pool =
    match pool with Some p -> p | None -> Pool.create ~jobs:1 ()
  in
  let critical = Longest_path.critical_delay g labels in
  let eps = 1e-15 +. (1e-12 *. Float.abs critical) in
  let threshold = critical -. slack -. eps in
  (* Tie tick for the priority order: well above ulp-level summation
     noise (~1e-22 s at gate-delay scale), well below real inter-path
     delay differences. *)
  let bucket_of bound = int_of_float (Float.floor (bound /. eps)) in
  let streams =
    Array.of_list
      (List.filter_map
         (fun o ->
           if labels.(o) >= threshold && not (prune o) then begin
             let sheap = Heap.create () in
             Heap.push sheap
               { bucket = bucket_of labels.(o);
                 depth = 1;
                 head = o;
                 tail_delay = 0.0;
                 suffix = [ o ] };
             Some { sheap; buf = Queue.create (); live = true }
           end
           else None)
         (Array.to_list g.Graph.circuit.Netlist.outputs))
  in
  (* Refill every half-drained stream whenever any head is unknown; the
     set of streams refilled in a round is a function of the merge state
     alone, so rounds are identical at any worker count. *)
  let refill_round () =
    let targets =
      Array.of_list
        (List.filter
           (fun s -> s.live && Queue.length s.buf < stream_batch / 2)
           (Array.to_list streams))
    in
    Pool.run pool ~chunks:(Array.length targets) (fun i ->
        let s = targets.(i) in
        fill g ~labels ~threshold ~bucket_of ~prune
          ~want:(stream_batch - Queue.length s.buf)
          s)
  in
  let head_unknown s = s.live && Queue.is_empty s.buf in
  let collected = ref [] in
  let count = ref 0 in
  let explored = ref 0 in
  let truncated = ref false in
  let deadline_hit = ref false in
  let running = ref true in
  while !running do
    if Array.exists head_unknown streams then refill_round ();
    (* The next global pop: the cand_before-greatest buffered head.
       Suffixes of distinct endpoints differ, so the order is total and
       the winner unique. *)
    let best = ref None in
    Array.iter
      (fun s ->
        match Queue.peek_opt s.buf with
        | None -> ()
        | Some c -> (
            match !best with
            | Some (_, bc) when not (cand_before c bc) -> ()
            | Some _ | None -> best := Some (s, c)))
      streams;
    match !best with
    | None -> running := false
    | Some (s, c) ->
        if !count >= max_paths then begin
          truncated := true;
          running := false
        end
        else if should_stop () then begin
          deadline_hit := true;
          running := false
        end
        else begin
          ignore (Queue.pop s.buf);
          incr explored;
          if Graph.is_input g c.head then begin
            incr count;
            let nodes = Array.of_list c.suffix in
            collected :=
              { nodes; delay = recompute_delay g nodes } :: !collected
          end
        end
  done;
  (* Emission order is already non-increasing in the heap bound; the
     stable sort only repairs last-ulp drift between the incremental
     bound and the recomputed forward sum. *)
  let paths =
    List.stable_sort (fun a b -> compare b.delay a.delay) (List.rev !collected)
  in
  { paths;
    truncated = !truncated;
    critical_delay = critical;
    slack;
    explored = !explored;
    deadline_hit = !deadline_hit }

let is_path g nodes =
  let n = Array.length nodes in
  if n = 0 then false
  else if not (Graph.is_input g nodes.(0)) then false
  else if
    not
      (Array.exists
         (fun o -> o = nodes.(n - 1))
         g.Graph.circuit.Netlist.outputs)
  then false
  else begin
    let ok = ref true in
    for i = 1 to n - 1 do
      let fanins = Graph.fanins g nodes.(i) in
      if not (Array.exists (fun f -> f = nodes.(i - 1)) fanins) then ok := false
    done;
    !ok
  end
