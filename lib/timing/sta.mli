(** Deterministic static timing analysis driver.

    Bundles the one-time calculations of the paper's methodology: build
    the timing graph, compute Bellman-Ford labels, extract the critical
    path, and (given a slack budget) enumerate and rank the near-critical
    paths by nominal delay.  Deterministic rank 1 is the nominally
    slowest path. *)

type t = {
  graph : Graph.t;
  labels : float array;  (** Bellman-Ford arrival labels *)
  critical_delay : float;  (** seconds *)
  critical_path : Paths.path;
}

val analyze : ?wire_cap:float -> Ssta_circuit.Netlist.t -> t
(** Graph construction + labels + critical path. *)

val of_graph : Graph.t -> t
(** Run the label/critical-path computations on an existing graph (e.g.
    one built with {!Graph.with_drives}). *)

val analyze_placed :
  ?wire:Ssta_tech.Wire.params ->
  Ssta_circuit.Netlist.t ->
  Ssta_circuit.Placement.t ->
  t
(** Like {!analyze} but with placement-aware wire loading
    ({!Graph.of_placed}). *)

val near_critical :
  ?max_paths:int ->
  ?should_stop:(unit -> bool) ->
  ?prune:(int -> bool) ->
  ?pool:Ssta_parallel.Pool.t ->
  t ->
  slack:float ->
  Paths.enumeration
(** Paths within [slack] of the critical delay, ranked by nominal delay
    (deterministic rank = 1-based position in this list).  [should_stop]
    imposes a caller-side deadline; [pool] parallelizes per-endpoint
    stream prefetching without changing any output bit; see
    {!Paths.enumerate}. *)

val worst_case_delay : ?corner_k:float -> t -> Paths.path -> float
(** Classical corner analysis of one path (all parameters at the
    worst-case corner simultaneously). *)

val pp_summary : Format.formatter -> t -> unit
