(** Near-critical path enumeration — the recursive algorithm of Fig. 2.

    Given the Bellman-Ford labels, all source-to-output paths whose total
    nominal delay is within a slack budget of the critical delay are
    enumerated by walking backwards from each output: a fan-in [u] of
    node [n] stays on a candidate path when its label is within the
    remaining slack of [label(n) - delay(n)].  Worst-case cost is
    O(kappa * E) for kappa emitted paths, as the paper notes.

    The paper caps the explosion on c6288 by lowering C; we additionally
    support a hard [max_paths] cap that marks the result truncated.

    Enumeration is best-first: candidates are expanded in decreasing
    order of their optimistic delay bound, so paths are emitted longest
    first and a capped enumeration is a prefix of the uncapped ranking
    at tie-tick granularity — bounds are compared through a fixed
    quantization tick (1e-15 s + 1e-12 relative), below which paths
    count as tied and are explored depth-first.  Without the tick,
    ulp-level float noise between exactly-tied paths (c6288 has ~1e20)
    degenerates the search into a breadth-first sweep that never
    completes a path.  An optional [should_stop] callback lets callers
    impose wall-clock deadlines; a stopped run returns the paths found
    so far with [deadline_hit] set. *)

type path = {
  nodes : int array;  (** primary input first, primary output last *)
  delay : float;  (** nominal delay, seconds *)
}

type enumeration = {
  paths : path list;  (** sorted by decreasing nominal delay *)
  truncated : bool;  (** true when [max_paths] stopped the search *)
  critical_delay : float;
  slack : float;  (** the slack budget used *)
  explored : int;  (** candidate states popped from the frontier *)
  deadline_hit : bool;  (** true when [should_stop] stopped the search *)
}

val path_gates : Graph.t -> path -> Ssta_tech.Gate.electrical list
(** Electrical models of the gate nodes of a path (inputs skipped), in
    path order. *)

val path_gate_count : Graph.t -> path -> int
(** Number of gates on the path (the paper's Table 2 column 10). *)

val recompute_delay : Graph.t -> int array -> float
(** Sum of gate delays along an explicit node list (validation). *)

val enumerate :
  ?max_paths:int ->
  ?should_stop:(unit -> bool) ->
  ?prune:(int -> bool) ->
  ?pool:Ssta_parallel.Pool.t ->
  Graph.t ->
  labels:float array ->
  slack:float ->
  enumeration
(** All paths with delay >= critical - slack, up to [max_paths]
    (default 200_000), longest first.  [slack] must be non-negative.
    [should_stop] is polled once per expanded candidate; when it
    returns [true] the search stops and the result carries the paths
    emitted so far with [deadline_hit = true].

    [prune] is a static screening hook: a node for which it returns
    [true] is never pushed on the frontier.  The caller must only prune
    nodes that provably lie on no path whose delay clears the
    enumeration threshold (e.g. from the affine suffix bound of
    [Ssta_check.Affine.screen]); under that obligation the entire
    enumeration record — paths, order, [explored], flags — is
    byte-identical to the unpruned run, because every frontier push the
    unpruned search performs survives the hook.  The hook must be pure:
    it is called from worker domains when [pool] is given.

    The search decomposes by primary output into independent
    per-endpoint streams whose buffered expansions are merged back in
    the exact order a single global frontier would pop them, so passing
    [pool] parallelizes stream prefetching across domains while keeping
    the result — paths, order, [explored], flags — byte-identical to
    the sequential run. *)

val is_path : Graph.t -> int array -> bool
(** Check that consecutive nodes are connected, the first is a primary
    input and the last a primary output. *)
