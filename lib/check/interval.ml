type t = Bottom | Range of { lo : float; hi : float }

let bottom = Bottom
let top = Range { lo = neg_infinity; hi = infinity }

let make ~lo ~hi =
  if Float.is_nan lo || Float.is_nan hi || hi < lo then
    invalid_arg "Interval.make: ill-formed interval";
  Range { lo; hi }

let of_pair (lo, hi) = make ~lo ~hi
let singleton x = make ~lo:x ~hi:x
let zero = singleton 0.0
let is_bottom = function Bottom -> true | Range _ -> false

let equal a b =
  match a, b with
  | Bottom, Bottom -> true
  | Range a, Range b -> a.lo = b.lo && a.hi = b.hi
  | _ -> false

let range = function Bottom -> None | Range { lo; hi } -> Some (lo, hi)

let hull a b =
  match a, b with
  | Bottom, x | x, Bottom -> x
  | Range a, Range b ->
      Range { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let sup a b =
  match a, b with
  | Bottom, x | x, Bottom -> x
  | Range a, Range b ->
      Range { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let add a b =
  match a, b with
  | Bottom, _ | _, Bottom -> Bottom
  | Range a, Range b -> Range { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let widen ~prev ~next =
  match prev, next with
  | Bottom, x | x, Bottom -> x
  | Range p, Range n ->
      Range
        { lo = (if n.lo < p.lo then neg_infinity else p.lo);
          hi = (if n.hi > p.hi then infinity else p.hi) }

let widen_sup ~prev ~next =
  match prev, next with
  | Bottom, x | x, Bottom -> x
  | Range p, Range n ->
      let lo = if n.lo > p.lo then infinity else p.lo in
      let hi = if n.hi > p.hi then infinity else p.hi in
      Range { lo; hi = Float.max lo hi }

let contains ?(slack = 0.0) i x =
  match i with
  | Bottom -> false
  | Range { lo; hi } -> x >= lo -. slack && x <= hi +. slack

let subset ?(slack = 0.0) a ~of_ =
  match a, of_ with
  | Bottom, _ -> true
  | Range _, Bottom -> false
  | Range a, Range b -> a.lo >= b.lo -. slack && a.hi <= b.hi +. slack

let width = function Bottom -> 0.0 | Range { lo; hi } -> hi -. lo

let magnitude = function
  | Bottom -> 0.0
  | Range { lo; hi } -> Float.max (Float.abs lo) (Float.abs hi)

let pp fmt = function
  | Bottom -> Format.fprintf fmt "_|_"
  | Range { lo; hi } -> Format.fprintf fmt "[%g, %g]" lo hi
