module Netlist = Ssta_circuit.Netlist
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Sta = Ssta_timing.Sta
module Params = Ssta_tech.Params
module Elmore = Ssta_tech.Elmore
module Derivatives = Ssta_tech.Derivatives
module Budget = Ssta_correlation.Budget
module Config = Ssta_core.Config
module Erf = Ssta_prob.Erf

type form = {
  center : float;
  coeffs : Interval.t array;
  intra_sigma : float;
  residual : Interval.t;
}

type t = Bottom | Form of form

let num_rvs = List.length Params.all_rvs
let zero_coeffs () = Array.make num_rvs (Interval.singleton 0.0)

let const c =
  Form
    { center = c;
      coeffs = zero_coeffs ();
      intra_sigma = 0.0;
      residual = Interval.zero }

let add a b =
  match (a, b) with
  | Bottom, _ | _, Bottom -> Bottom
  | Form a, Form b ->
      Form
        { center = a.center +. b.center;
          coeffs = Array.map2 Interval.add a.coeffs b.coeffs;
          intra_sigma = a.intra_sigma +. b.intra_sigma;
          residual = Interval.add a.residual b.residual }

(* Interval scaled by a constant; the endpoints swap when k < 0. *)
let iscale k i =
  match Interval.range i with
  | None -> Interval.Bottom
  | Some (lo, hi) ->
      let a = k *. lo and b = k *. hi in
      Interval.make ~lo:(Float.min a b) ~hi:(Float.max a b)

let scale k = function
  | Bottom -> Bottom
  | Form f ->
      Form
        { center = k *. f.center;
          coeffs = Array.map (iscale k) f.coeffs;
          intra_sigma = Float.abs k *. f.intra_sigma;
          residual = iscale k f.residual }

let max a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Form a, Form b ->
      Form
        { center = Float.max a.center b.center;
          coeffs = Array.map2 Interval.hull a.coeffs b.coeffs;
          intra_sigma = Float.max a.intra_sigma b.intra_sigma;
          residual = Interval.hull a.residual b.residual }

let join = max

let equal a b =
  match (a, b) with
  | Bottom, Bottom -> true
  | Form a, Form b ->
      Float.equal a.center b.center
      && Array.for_all2 Interval.equal a.coeffs b.coeffs
      && Float.equal a.intra_sigma b.intra_sigma
      && Interval.equal a.residual b.residual
  | _ -> false

let widen ~prev ~next =
  match (prev, next) with
  | Bottom, x | x, Bottom -> x
  | Form p, Form n ->
      Form
        { center = (if n.center > p.center then infinity else n.center);
          coeffs =
            Array.map2
              (fun prev next -> Interval.widen ~prev ~next)
              p.coeffs n.coeffs;
          intra_sigma =
            (if n.intra_sigma > p.intra_sigma then infinity
             else n.intra_sigma);
          residual = Interval.widen ~prev:p.residual ~next:n.residual }

let pp fmt = function
  | Bottom -> Format.pp_print_string fmt "_|_"
  | Form f ->
      Format.fprintf fmt "%.6g" f.center;
      List.iteri
        (fun i rv ->
          Format.fprintf fmt " + %a*%s" Interval.pp f.coeffs.(i)
            (Params.rv_name rv))
        Params.all_rvs;
      Format.fprintf fmt " (intra<=%.3g, res=%a)" f.intra_sigma Interval.pp
        f.residual

let sum_coeff_magnitude f =
  Array.fold_left (fun acc c -> acc +. Interval.magnitude c) 0.0 f.coeffs

let concretize ~trunc = function
  | Bottom -> Interval.bottom
  | Form f ->
      let half = trunc *. (sum_coeff_magnitude f +. f.intra_sigma) in
      Interval.add
        (Interval.make ~lo:(f.center -. half) ~hi:(f.center +. half))
        f.residual

let sigma_upper = function
  | Bottom -> 0.0
  | Form f ->
      let acc =
        Array.fold_left
          (fun acc c ->
            let m = Interval.magnitude c in
            acc +. (m *. m))
          0.0 f.coeffs
      in
      sqrt (acc +. (f.intra_sigma *. f.intra_sigma))

(* ----- whole-circuit analysis ----- *)

type analysis = {
  gate : t array;
  arrival : t array;
  suffix : t array;
  circuit : t;
  trunc : float;
  forward_stats : string;
  backward_stats : string;
}

module Domain = struct
  type nonrec t = t

  let bottom = Bottom
  let equal = equal
  let join = join
  let widen = widen
  let pp = pp
end

module Solver = Dataflow.Make (Domain)

let pp_stats (s : Solver.stats) =
  Printf.sprintf "visits=%d updates=%d widenings=%d converged=%b"
    s.Solver.visits s.Solver.updates s.Solver.widenings s.Solver.converged

(* One gate's delay as a form.  The linear part is the tangent plane at
   nominal, split into the inter-die share (per-RV coefficients scaled
   by sigma * sqrt w0) and the orthogonal intra-die sigma; the residual
   is whatever the exact corner range of the Elmore model
   (Arrival_bounds' certified gate interval) sticks out beyond the
   tangent box, clamped so it always contains 0.  By construction the
   concretization at the analysis truncation is the hull of the
   certified interval and the tangent box — sound without any convexity
   assumption on the delay model. *)
let gate_form ~trunc ~scale_all ~w0 ~intra_fraction ~d0 e =
  let grad = Derivatives.gradient e Params.nominal in
  let sqrt_w0 = sqrt w0 in
  let coeffs =
    Array.of_list
      (List.map
         (fun rv ->
           Interval.singleton
             (Params.get grad rv *. Params.sigma rv *. sqrt_w0))
         Params.all_rvs)
  in
  let intra_var =
    List.fold_left
      (fun acc rv ->
        let d = Params.get grad rv and s = Params.sigma rv in
        acc +. (d *. d *. s *. s))
      0.0 Params.all_rvs
  in
  let intra_sigma = sqrt (intra_fraction *. intra_var) in
  let full =
    Interval.of_pair (Elmore.delay_bounds ~bound:(trunc *. scale_all) e)
  in
  let inter =
    Interval.of_pair (Elmore.delay_bounds ~bound:(trunc *. sqrt_w0) e)
  in
  let h = trunc *. intra_sigma in
  let total = Interval.hull full (Interval.add inter (Interval.make ~lo:(-.h) ~hi:h)) in
  let gt_lo, gt_hi =
    match Interval.range total with Some r -> r | None -> (d0, d0)
  in
  let half =
    trunc
    *. (Array.fold_left (fun acc c -> acc +. Interval.magnitude c) 0.0 coeffs
       +. intra_sigma)
  in
  let res_lo = Float.min 0.0 (gt_lo -. (d0 -. half)) in
  let res_hi = Float.max 0.0 (gt_hi -. (d0 +. half)) in
  Form
    { center = d0;
      coeffs;
      intra_sigma;
      residual = Interval.make ~lo:res_lo ~hi:res_hi }

let compute (config : Config.t) (g : Graph.t) =
  let c = g.Graph.circuit in
  let n = Netlist.num_nodes c in
  let budget = config.Config.budget in
  let trunc = config.Config.truncation in
  let num_layers = Budget.layers budget in
  let scale_all = ref 0.0 in
  for u = 0 to num_layers - 1 do
    scale_all := !scale_all +. sqrt (Budget.weight budget u)
  done;
  let scale_all = !scale_all in
  let w0 = Budget.inter_fraction budget in
  let intra_fraction = Float.max 0.0 (1.0 -. w0) in
  let gate = Array.make n (const 0.0) in
  match
    for id = 0 to n - 1 do
      if not (Graph.is_input g id) then
        gate.(id) <-
          gate_form ~trunc ~scale_all ~w0 ~intra_fraction
            ~d0:g.Graph.delay.(id)
            (Graph.electrical_exn g id)
    done
  with
  | exception Invalid_argument msg -> Error msg
  | () ->
      let forward =
        Solver.fixpoint ~direction:Dataflow.Forward c
          ~init:(fun id ->
            if Netlist.is_input c id then const 0.0 else Bottom)
          ~transfer:(fun ~node inflow -> add inflow gate.(node))
      in
      let arrival = forward.Solver.values in
      let is_output = Array.make n false in
      Array.iter (fun id -> is_output.(id) <- true) c.Netlist.outputs;
      (* Backward value: suffix including the node's own gate; the
         exclusive suffix is recovered per node below, exactly as in
         Arrival_bounds. *)
      let backward =
        Solver.fixpoint ~direction:Dataflow.Backward c
          ~init:(fun id -> if is_output.(id) then const 0.0 else Bottom)
          ~transfer:(fun ~node inflow -> add inflow gate.(node))
      in
      let fanouts = Netlist.fanouts c in
      let suffix =
        Array.init n (fun id ->
            let from_consumers =
              Array.fold_left
                (fun acc cid -> join acc backward.Solver.values.(cid))
                Bottom fanouts.(id)
            in
            if is_output.(id) then join (const 0.0) from_consumers
            else from_consumers)
      in
      let circuit =
        Array.fold_left
          (fun acc id -> join acc arrival.(id))
          Bottom c.Netlist.outputs
      in
      Ok
        { gate;
          arrival;
          suffix;
          circuit;
          trunc;
          forward_stats = pp_stats forward.Solver.stats;
          backward_stats = pp_stats backward.Solver.stats }

let path_form a (path : Paths.path) =
  Array.fold_left
    (fun acc id -> add acc a.gate.(id))
    (const 0.0) path.Paths.nodes

let through a u = add a.arrival.(u) a.suffix.(u)

(* ----- static path screening ----- *)

type screen = {
  pruned : bool array;
  nodes_visited : int;
  nodes_pruned : int;
  threshold : float;
}

let screen a (sta : Sta.t) ~slack =
  let labels = sta.Sta.labels in
  let critical = sta.Sta.critical_delay in
  (* Must match Paths.enumerate: threshold = critical - slack - eps,
     and we leave one further eps of margin so that ulp-level
     summation-order drift (~1e-22 s, see the tie-tick comment in
     Paths) can never promote a pruned node into a pushable one. *)
  let eps = 1e-15 +. (1e-12 *. Float.abs critical) in
  let threshold = critical -. slack -. eps in
  let n = Array.length labels in
  let pruned = Array.make n false in
  let nodes_pruned = ref 0 in
  for u = 0 to n - 1 do
    let p =
      match a.suffix.(u) with
      | Bottom -> true (* on no complete path at all *)
      | Form s -> labels.(u) +. s.center < threshold -. eps
    in
    pruned.(u) <- p;
    if p then incr nodes_pruned
  done;
  { pruned; nodes_visited = n; nodes_pruned = !nodes_pruned; threshold }

let prune_hook s u = s.pruned.(u)

let screen_counters s =
  [ ("affine-screen-nodes-pruned", s.nodes_pruned);
    ("affine-screen-nodes-visited", s.nodes_visited) ]

let methodology_screen config ~sta ~slack =
  match compute config sta.Sta.graph with
  | Error _ -> ((fun _ -> false), [])
  | Ok a ->
      let s = screen a sta ~slack in
      (prune_hook s, screen_counters s)

(* ----- per-node criticality ----- *)

type crit = {
  node : int;
  through_center : float;
  slack : float;
  sigma : float;
  z : float;
  prob : float;
}

let criticality a (sta : Sta.t) =
  let g = sta.Sta.graph in
  let critical = sta.Sta.critical_delay in
  let crits = ref [] in
  for u = 0 to Graph.num_nodes g - 1 do
    if not (Graph.is_input g u) then begin
      match through a u with
      | Bottom -> ()
      | Form f ->
          let slack = Float.max 0.0 (critical -. f.center) in
          let sigma = sigma_upper (Form f) in
          let z = if sigma > 0.0 then slack /. sigma else infinity in
          let prob = Erf.erfc (z /. sqrt 2.0) /. 2.0 in
          crits :=
            { node = u; through_center = f.center; slack; sigma; z; prob }
            :: !crits
    end
  done;
  List.sort
    (fun a b ->
      match Float.compare a.z b.z with
      | 0 -> Int.compare a.node b.node
      | c -> c)
    (List.rev !crits)

let pp_criticality ?(top = 20) (g : Graph.t) fmt crits =
  let name id = Netlist.node_name g.Graph.circuit id in
  Format.fprintf fmt
    "criticality (affine upper bound, %d gates, top %d):@." (List.length crits)
    top;
  Format.fprintf fmt "  %-16s %10s %10s %8s %10s@." "gate" "slack_ps"
    "sigma_ps" "z" "P_crit<=";
  List.iteri
    (fun i c ->
      if i < top then
        Format.fprintf fmt "  %-16s %10.3f %10.3f %8.3f %10.3e@." (name c.node)
          (Elmore.ps c.slack) (Elmore.ps c.sigma) c.z c.prob)
    crits

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let criticality_json (g : Graph.t) crits =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"criticality\": [";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"node\": %d, \"name\": \"%s\", \"through_s\": %.17g, \
            \"slack_s\": %.17g, \"sigma_s\": %.17g, \"z\": %.17g, \
            \"prob_ub\": %.17g}"
           c.node
           (json_escape (Netlist.node_name g.Graph.circuit c.node))
           c.through_center c.slack c.sigma c.z c.prob))
    crits;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
