module D = Ssta_lint.Diagnostic
module Health = Ssta_runtime.Health
module Pdf = Ssta_prob.Pdf

type config = {
  tol_mass : float;
  tol_clamped : float;
  max_findings : int;
}

let default_config = { tol_mass = 1e-6; tol_clamped = 1e-9; max_findings = 64 }

type t = {
  cfg : config;
  health_ledger : Health.t;
  mutable ops : int;
  mutable kept : D.t list;  (* newest first *)
  mutable n_kept : int;
  mutable n_dropped : int;
}

let checks =
  [ ("check-pdfsan-density",
     "no NaN, infinite or negative density entries in any operation's \
      output");
    ("check-pdfsan-mass",
     "every operation conserves probability mass within tolerance");
    ("check-pdfsan-support",
     "every operation's output support lies inside its shadow interval");
    ("check-pdfsan-cdf",
     "every operation's output CDF is monotone from 0 to 1");
    ("check-pdfsan-clamped",
     "no significant mass is clamped at accumulator grid boundaries") ]

let create ?(config = default_config) ?health () =
  let health_ledger =
    match health with Some h -> h | None -> Health.create ()
  in
  { cfg = config;
    health_ledger;
    ops = 0;
    kept = [];
    n_kept = 0;
    n_dropped = 0 }

let keep t d =
  if t.n_kept < t.cfg.max_findings then begin
    t.kept <- d :: t.kept;
    t.n_kept <- t.n_kept + 1
  end
  else t.n_dropped <- t.n_dropped + 1

let finding t ~severity ~rule ~op msg =
  keep t (D.make ~rule ~severity ~location:(D.Pdf op) msg)

let audit t (ev : Pdf.trace_event) =
  t.ops <- t.ops + 1;
  let op = ev.Pdf.trace_op in
  let out = ev.Pdf.trace_output in
  let n = Pdf.size out in
  let bad_density = ref 0 and negative = ref false in
  Array.iter
    (fun d ->
      if not (Float.is_finite d) then incr bad_density
      else if d < 0.0 then begin
        incr bad_density;
        negative := true
      end)
    out.Pdf.density;
  if !bad_density > 0 then begin
    let issue = if !negative then Health.Negative_density else Health.Non_finite in
    Health.record t.health_ledger ~op ~issue
      (Printf.sprintf "%d bad density cells" !bad_density);
    finding t ~severity:D.Error ~rule:"check-pdfsan-density" ~op
      (Printf.sprintf
         "%d of %d density entries are NaN, infinite or negative"
         !bad_density n)
  end
  else begin
    (* Mass conservation: the normalized output must integrate to 1, and
       the mass the operation accumulated before Pdf.make normalized it
       must have been 1 as well. *)
    let mass = Pdf.total_mass out in
    if Float.abs (mass -. 1.0) > t.cfg.tol_mass then begin
      Health.record t.health_ledger ~op ~issue:Health.Mass_defect
        ~defect:(Float.abs (mass -. 1.0))
        "normalized output mass drifted";
      finding t ~severity:D.Error ~rule:"check-pdfsan-mass" ~op
        (Printf.sprintf "output mass is %.9g, expected 1" mass)
    end;
    (match ev.Pdf.trace_mass_in with
    | Some mass_in when Float.abs (mass_in -. 1.0) > t.cfg.tol_mass ->
        Health.record t.health_ledger ~op ~issue:Health.Mass_defect
          ~defect:(Float.abs (mass_in -. 1.0))
          "operation accumulated non-unit mass";
        finding t ~severity:D.Error ~rule:"check-pdfsan-mass" ~op
          (Printf.sprintf
             "operation accumulated mass %.9g before normalization, \
              expected 1"
             mass_in)
    | _ -> ());
    (* Support containment in the shadow interval.  Slack: one output
       grid step (deposit splitting), a 1e-12 absolute floor (the widen
       epsilon of degenerate grids) and 1e-9 relative rounding. *)
    (match ev.Pdf.trace_expected with
    | Some (elo, ehi) ->
        let slack =
          out.Pdf.step +. 1e-12
          +. (1e-9 *. Float.max (Float.abs elo) (Float.abs ehi))
        in
        if out.Pdf.lo < elo -. slack || Pdf.hi out > ehi +. slack then
          finding t ~severity:D.Error ~rule:"check-pdfsan-support" ~op
            (Printf.sprintf
               "output support [%.9g, %.9g] escapes the shadow interval \
                [%.9g, %.9g]"
               out.Pdf.lo (Pdf.hi out) elo ehi)
    | None -> ());
    (* Monotone CDF: 0 at the left edge, 1 at the right edge,
       non-decreasing across probes. *)
    let lo = out.Pdf.lo and hi = Pdf.hi out in
    let cdf_lo = Pdf.cdf out lo and cdf_hi = Pdf.cdf out hi in
    let monotone = ref true in
    let probes = 8 in
    let prev = ref neg_infinity in
    for i = 0 to probes do
      let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int probes) in
      let v = Pdf.cdf out x in
      if v < !prev -. t.cfg.tol_mass then monotone := false;
      prev := v
    done;
    if
      Float.abs cdf_lo > t.cfg.tol_mass
      || Float.abs (cdf_hi -. 1.0) > t.cfg.tol_mass
      || not !monotone
    then
      finding t ~severity:D.Error ~rule:"check-pdfsan-cdf" ~op
        (Printf.sprintf
           "CDF spans [%.9g, %.9g] over the support%s, expected a \
            monotone [0, 1]"
           cdf_lo cdf_hi
           (if !monotone then "" else " and is non-monotone"))
  end;
  if ev.Pdf.trace_clamped > t.cfg.tol_clamped then begin
    Health.record t.health_ledger ~op ~issue:Health.Mass_defect
      ~defect:ev.Pdf.trace_clamped "mass clamped at grid boundary";
    finding t ~severity:D.Warning ~rule:"check-pdfsan-clamped" ~op
      (Printf.sprintf
         "%.3g probability mass was deposited outside the grid and \
          clamped to a boundary cell"
         ev.Pdf.trace_clamped)
  end

let install t = Pdf.trace_install (audit t)
let uninstall () = Pdf.trace_uninstall ()
let ops t = t.ops
let findings t = List.rev t.kept
let dropped t = t.n_dropped
let health t = t.health_ledger

let with_session ?config f =
  let t = create ?config () in
  install t;
  Fun.protect ~finally:uninstall (fun () ->
      let r = f () in
      (r, t))
