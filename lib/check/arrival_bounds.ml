module Netlist = Ssta_circuit.Netlist
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Params = Ssta_tech.Params
module Elmore = Ssta_tech.Elmore
module Derivatives = Ssta_tech.Derivatives
module Budget = Ssta_correlation.Budget
module Config = Ssta_core.Config

type t = {
  gate_total : Interval.t array;
  gate_inter : Interval.t array;
  intra_halfwidth : float array;
  arrival : Interval.t array;
  suffix : Interval.t array;
  circuit : Interval.t;
  forward_stats : string;
  backward_stats : string;
}

module Arrival_domain = struct
  type t = Interval.t

  let bottom = Interval.bottom
  let equal = Interval.equal
  let join = Interval.sup
  let widen = Interval.widen_sup
  let pp = Interval.pp
end

module Solver = Dataflow.Make (Arrival_domain)

let pp_stats (s : Solver.stats) =
  Printf.sprintf "visits=%d updates=%d widenings=%d converged=%b"
    s.Solver.visits s.Solver.updates s.Solver.widenings s.Solver.converged

(* Half-width of the analytic intra-die delay contribution of one gate.
   The intra PDF of a path is a Gaussian with variance
   sigma_path^2 = sum of squared layer coefficients (Eq. 14), truncated
   at +- trunc * sigma_path.  A single gate's intra sigma is
   sqrt (sum_rv grad^2 sigma^2 (1 - w0)), and sigma_path is at most the
   sum of the per-gate sigmas (coefficients add before squaring), so
   summing trunc * sigma_gate along a path bounds the path's intra
   support. *)
let intra_halfwidth_of ~trunc ~intra_fraction e =
  let grad = Derivatives.gradient e Params.nominal in
  let var =
    List.fold_left
      (fun acc rv ->
        let d = Params.get grad rv and s = Params.sigma rv in
        acc +. (d *. d *. s *. s))
      0.0 Params.all_rvs
  in
  trunc *. sqrt (intra_fraction *. var)

let compute (config : Config.t) (g : Graph.t) =
  let c = g.Graph.circuit in
  let n = Netlist.num_nodes c in
  let budget = config.Config.budget in
  let trunc = config.Config.truncation in
  let num_layers = Budget.layers budget in
  (* Per-layer truncation inflates the worst total deviation of each RV
     to trunc * sigma * sum_u sqrt w_u (L1 over layers). *)
  let scale_all = ref 0.0 in
  for u = 0 to num_layers - 1 do
    scale_all := !scale_all +. sqrt (Budget.weight budget u)
  done;
  let scale_all = !scale_all in
  let w0 = Budget.inter_fraction budget in
  let intra_fraction = Float.max 0.0 (1.0 -. w0) in
  let gate_total = Array.make n Interval.zero in
  let gate_inter = Array.make n Interval.zero in
  let intra_halfwidth = Array.make n 0.0 in
  match
    for id = 0 to n - 1 do
      if not (Graph.is_input g id) then begin
        let e = Graph.electrical_exn g id in
        let full = Interval.of_pair (Elmore.delay_bounds ~bound:(trunc *. scale_all) e) in
        let inter =
          Interval.of_pair (Elmore.delay_bounds ~bound:(trunc *. sqrt w0) e)
        in
        let h = intra_halfwidth_of ~trunc ~intra_fraction e in
        gate_inter.(id) <- inter;
        intra_halfwidth.(id) <- h;
        gate_total.(id) <-
          Interval.hull full
            (Interval.add inter (Interval.make ~lo:(-.h) ~hi:h))
      end
    done
  with
  | exception Invalid_argument msg -> Error msg
  | () ->
      let forward =
        Solver.fixpoint ~direction:Dataflow.Forward c
          ~init:(fun id ->
            if Netlist.is_input c id then Interval.zero else Interval.bottom)
          ~transfer:(fun ~node inflow -> Interval.add inflow gate_total.(node))
      in
      let arrival = forward.Solver.values in
      (* Backward value: suffix delay including the node's own gate
         delay; the exclusive suffix is recovered per node below. *)
      let is_output = Array.make n false in
      Array.iter (fun id -> is_output.(id) <- true) c.Netlist.outputs;
      let backward =
        Solver.fixpoint ~direction:Dataflow.Backward c
          ~init:(fun id -> if is_output.(id) then Interval.zero else Interval.bottom)
          ~transfer:(fun ~node inflow -> Interval.add inflow gate_total.(node))
      in
      let fanouts = Netlist.fanouts c in
      let suffix =
        Array.init n (fun id ->
            let from_consumers =
              Array.fold_left
                (fun acc cid -> Interval.sup acc backward.Solver.values.(cid))
                Interval.bottom fanouts.(id)
            in
            if is_output.(id) then Interval.sup Interval.zero from_consumers
            else from_consumers)
      in
      let circuit =
        Array.fold_left
          (fun acc id -> Interval.sup acc arrival.(id))
          Interval.bottom c.Netlist.outputs
      in
      Ok
        { gate_total;
          gate_inter;
          intra_halfwidth;
          arrival;
          suffix;
          circuit;
          forward_stats = pp_stats forward.Solver.stats;
          backward_stats = pp_stats backward.Solver.stats }

let sum_along (arr : Interval.t array) (path : Paths.path) =
  Array.fold_left (fun acc id -> Interval.add acc arr.(id)) Interval.zero
    path.Paths.nodes

let path_total t path = sum_along t.gate_total path
let path_inter t path = sum_along t.gate_inter path

let path_intra_halfwidth t (path : Paths.path) =
  Array.fold_left
    (fun acc id -> acc +. t.intra_halfwidth.(id))
    0.0 path.Paths.nodes
