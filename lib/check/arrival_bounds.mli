(** Interval arrival-time analysis (the first concrete instance of the
    monotone framework).

    Every gate delay is bounded because the paper truncates all
    parameter PDFs at [+-truncation * sigma] (Section 2.2).  This module
    turns that fact into certified per-node intervals:

    - {b gate intervals} — a sound enclosure of one gate's stochastic
      delay.  Monotonicity of the Elmore model gives the exact range
      over an axis-aligned parameter box ({!Ssta_tech.Elmore.delay_bounds});
      soundness over {e both} delay semantics used in the code base
      requires the hull of two boxes:
      {ul
      {- the {e full} box with half-width
         [truncation * sigma * sum over layers u of sqrt w_u] per RV —
         per-layer truncation bounds each layer's draw separately, so
         the total deviation of a Monte-Carlo sample is L1-inflated
         beyond the naive [+-truncation * sigma]; and}
      {- the {e inter} box ([sqrt w_0] scale) Minkowski-summed with the
         linearized intra half-width
         [truncation * sqrt (sum_rv grad_rv^2 sigma_rv^2 (1 - w_0))] —
         the analytic intra PDF is a truncated Gaussian of the
         linearized path delay, and by convexity the linearized value
         can leave the nonlinear range.}}
    - {b arrival intervals} — a forward max-plus fixpoint:
      [arrival(n) = sup over fan-ins + gate interval], inputs at [0].
    - {b suffix intervals} — the backward dual: worst delay from a
      node's output to any primary output.  For every node,
      [hi(arrival) + hi(suffix) <= hi(circuit)] must hold — a built-in
      cross-check of the two fixpoints. *)

type t = {
  gate_total : Interval.t array;
      (** per node: sound bound on the gate's stochastic delay
          ([[0, 0]] for primary inputs) *)
  gate_inter : Interval.t array;
      (** bound on the inter-die (layer 0) part alone *)
  intra_halfwidth : float array;
      (** per node: linearized intra-die half-width (seconds) *)
  arrival : Interval.t array;  (** forward max-plus fixpoint *)
  suffix : Interval.t array;
      (** backward fixpoint: delay from the node's output (exclusive of
          its own delay) to any primary output *)
  circuit : Interval.t;  (** sup over primary outputs of [arrival] *)
  forward_stats : string;  (** rendered solver statistics *)
  backward_stats : string;
}

val compute :
  Ssta_core.Config.t -> Ssta_timing.Graph.t -> (t, string) result
(** [Error] when a corner of the parameter box leaves the Elmore model's
    validity domain (the bound cannot be computed soundly). *)

val path_total : t -> Ssta_timing.Paths.path -> Interval.t
(** Sum of {!field-gate_total} along a path. *)

val path_inter : t -> Ssta_timing.Paths.path -> Interval.t
(** Sum of {!field-gate_inter} along a path. *)

val path_intra_halfwidth : t -> Ssta_timing.Paths.path -> float
(** Sum of {!field-intra_halfwidth} along a path: the analytic intra PDF
    of the path is supported in [[-h, h]]. *)
