(** Variance accounting — static recomputation of the Eq. 14 layer
    decomposition.

    Independently of the numeric pipeline, each path's intra-die
    variance is re-derived from the raw coefficient table: per-layer
    shares [sum over keys of layer u of coeff^2 * sigma^2 * w_u] must
    sum to the path's reported intra variance exactly (these are the
    same finite sums, so the tolerance is rounding-level), and the
    discretized intra/total PDFs must reproduce the analytic variances
    up to the discretization error of the grid.  Budget-level checks
    verify that the configured weight vector is a genuine probability
    split over the configured layer structure (the paper's default
    4+1 equal split gives the inter layer share 1/5). *)

val checks : (string * string) list
(** Check ids this module can emit, with one-line descriptions. *)

val check_config : Ssta_core.Config.t -> Ssta_lint.Diagnostic.t list
(** Budget/layer-structure consistency: layer count matches the
    configured quad-tree (+ random) structure, weights are finite,
    non-negative and sum to 1, and the per-RV layer variances recompose
    each RV's total variance. *)

val check_path :
  ?tol_exact:float ->
  ?tol_grid:float ->
  Ssta_core.Config.t ->
  num_nodes:int ->
  label:string ->
  Ssta_core.Path_analysis.t ->
  Ssta_lint.Diagnostic.t list
(** Per-path accounting.  [tol_exact] (default 1e-9, relative) guards
    the analytic identities; [tol_grid] (default 0.05, relative) guards
    PDF-measured variances against their analytic values — the
    discretized grids carry O(step^2) variance error.  [num_nodes]
    bounds the random layer's partition indices (they are gate ids).
    [label] names the path in diagnostic locations. *)
