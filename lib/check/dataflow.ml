module Netlist = Ssta_circuit.Netlist

type direction = Forward | Backward

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : prev:t -> next:t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (D : DOMAIN) = struct
  type stats = {
    visits : int;
    updates : int;
    widenings : int;
    converged : bool;
  }

  type result = { values : D.t array; stats : stats }

  let fixpoint ?(direction = Forward) ?(widen_after = 8)
      ?(max_updates_per_node = 64) (c : Netlist.t) ~init ~transfer =
    let n = Netlist.num_nodes c in
    let fanouts = Netlist.fanouts c in
    let fanins id =
      if Netlist.is_input c id then [||] else (Netlist.gate_of c id).Netlist.fanins
    in
    let preds, succs =
      match direction with
      | Forward -> (fanins, fun id -> fanouts.(id))
      | Backward -> ((fun id -> fanouts.(id)), fanins)
    in
    let values = Array.make n D.bottom in
    let update_count = Array.make n 0 in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push id =
      if not queued.(id) then begin
        queued.(id) <- true;
        Queue.add id queue
      end
    in
    (* Seed in (reverse-)topological order: node ids are topological by
       netlist construction. *)
    (match direction with
    | Forward ->
        for id = 0 to n - 1 do
          push id
        done
    | Backward ->
        for id = n - 1 downto 0 do
          push id
        done);
    let visits = ref 0 and updates = ref 0 and widenings = ref 0 in
    let converged = ref true in
    while !converged && not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      queued.(id) <- false;
      incr visits;
      let inflow =
        Array.fold_left
          (fun acc p -> D.join acc values.(p))
          (init id) (preds id)
      in
      let out = transfer ~node:id inflow in
      if not (D.equal out values.(id)) then begin
        update_count.(id) <- update_count.(id) + 1;
        if update_count.(id) > max_updates_per_node then converged := false
        else begin
          let out =
            if update_count.(id) > widen_after then begin
              incr widenings;
              D.widen ~prev:values.(id) ~next:out
            end
            else out
          in
          if not (D.equal out values.(id)) then begin
            incr updates;
            values.(id) <- out;
            Array.iter push (succs id)
          end
        end
      end
    done;
    { values;
      stats =
        { visits = !visits;
          updates = !updates;
          widenings = !widenings;
          converged = !converged } }
end
