(** Placement / quad-tree consistency.

    The spatial-correlation model is only meaningful when the geometry
    is coherent: every placed gate must lie inside the die, must map to
    exactly one partition rectangle per quad-tree layer (verified
    against an independent rectangle scan, not just the arithmetic of
    [Layers.partition_of]), the partition containing a gate at level
    [u] must be a child of its partition at level [u-1], and each
    level's sibling partitions must tile the die exactly with four
    children per parent sharing the parent's variance layer. *)

val checks : (string * string) list
(** Check ids this module can emit, with one-line descriptions. *)

val check :
  Ssta_core.Config.t ->
  Ssta_circuit.Netlist.t ->
  Ssta_circuit.Placement.t ->
  Ssta_lint.Diagnostic.t list
