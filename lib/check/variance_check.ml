module D = Ssta_lint.Diagnostic
module Params = Ssta_tech.Params
module Budget = Ssta_correlation.Budget
module Path_coeffs = Ssta_correlation.Path_coeffs
module Pdf = Ssta_prob.Pdf
module Config = Ssta_core.Config
module Path_analysis = Ssta_core.Path_analysis

let checks =
  [ ("check-var-budget",
     "variance budget is a probability split matching the layer structure");
    ("check-var-conservation",
     "per-layer variance shares sum to the path's intra variance");
    ("check-var-key",
     "every coefficient key names a valid (layer, partition) pair");
    ("check-var-intra-pdf",
     "discretized intra PDF variance matches Eq. 14 within grid error");
    ("check-var-additivity",
     "total PDF variance equals inter + intra variance within grid error") ]

let err ?hint ~rule ~location msg = D.make ?hint ~rule ~severity:D.Error ~location msg

(* |a - b| <= tol * scale, with a floor so identical zeros pass. *)
let close ~tol a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  scale = 0.0 || Float.abs (a -. b) <= tol *. scale

let check_config (config : Config.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let b = config.Config.budget in
  let layers = Budget.layers b in
  let expected = Config.num_layers config in
  if layers <> expected then
    add
      (err ~rule:"check-var-budget" ~location:D.Config
         ~hint:"the budget must assign one weight per correlation layer"
         (Printf.sprintf
            "budget has %d layer weights but the layer structure has %d \
             layers (%d quad-tree%s)"
            layers expected config.Config.quad_levels
            (if config.Config.random_layer then " + random" else "")));
  let sum = ref 0.0 and well_formed = ref true in
  for u = 0 to layers - 1 do
    let w = Budget.weight b u in
    if Float.is_nan w || w < 0.0 || w > 1.0 then begin
      well_formed := false;
      add
        (err ~rule:"check-var-budget" ~location:D.Config
           (Printf.sprintf "layer %d weight %g is not in [0, 1]" u w))
    end;
    sum := !sum +. w
  done;
  if !well_formed && not (close ~tol:1e-9 !sum 1.0) then
    add
      (err ~rule:"check-var-budget" ~location:D.Config
         (Printf.sprintf "layer weights sum to %.12g, expected 1" !sum));
  if !well_formed then
    List.iter
      (fun rv ->
        let sigma = Params.sigma rv in
        let recomposed = Budget.variance_check b ~total_sigma:sigma in
        if not (close ~tol:1e-9 recomposed (sigma *. sigma)) then
          add
            (err ~rule:"check-var-budget" ~location:D.Config
               (Printf.sprintf
                  "%s: per-layer variances recompose to %.6g, expected \
                   sigma^2 = %.6g"
                  (Params.rv_name rv) recomposed (sigma *. sigma))))
      Params.all_rvs;
  List.rev !ds

let check_path ?(tol_exact = 1e-9) ?(tol_grid = 0.05) (config : Config.t)
    ~num_nodes ~label (pa : Path_analysis.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let loc = D.Pdf label in
  let b = config.Config.budget in
  let layers = Budget.layers b in
  let quad_levels = config.Config.quad_levels in
  (* Key validity: intra layers only, partitions within the layer's
     range (4^u for spatial layers, gate ids for the random layer). *)
  let bad_keys = ref 0 in
  Hashtbl.iter
    (fun (k : Path_coeffs.key) _ ->
      let valid =
        k.Path_coeffs.layer >= 1
        && k.Path_coeffs.layer < layers
        &&
        if k.Path_coeffs.layer < quad_levels then
          k.Path_coeffs.partition >= 0
          && k.Path_coeffs.partition < 1 lsl (2 * k.Path_coeffs.layer)
        else k.Path_coeffs.partition >= 0 && k.Path_coeffs.partition < num_nodes
      in
      if not valid then incr bad_keys)
    pa.Path_analysis.coeffs.Path_coeffs.coeffs;
  if !bad_keys > 0 then
    add
      (err ~rule:"check-var-key" ~location:loc
         (Printf.sprintf
            "%d coefficient keys name an invalid (layer, partition) pair"
            !bad_keys));
  (* Independent recomputation of the per-layer shares from the raw
     coefficient table. *)
  let shares = Array.make (Int.max layers 1) 0.0 in
  Hashtbl.iter
    (fun (k : Path_coeffs.key) c ->
      if k.Path_coeffs.layer >= 1 && k.Path_coeffs.layer < layers then begin
        let sigma = Params.sigma k.Path_coeffs.rv in
        let w = Budget.weight b k.Path_coeffs.layer in
        shares.(k.Path_coeffs.layer) <-
          shares.(k.Path_coeffs.layer) +. (c *. c *. sigma *. sigma *. w)
      end)
    pa.Path_analysis.coeffs.Path_coeffs.coeffs;
  let share_sum = Array.fold_left ( +. ) 0.0 shares in
  let reported = Path_coeffs.intra_variance pa.Path_analysis.coeffs b in
  if not (close ~tol:tol_exact share_sum reported) then
    add
      (err ~rule:"check-var-conservation" ~location:loc
         (Printf.sprintf
            "per-layer shares sum to %.9g s^2 but the reported intra \
             variance is %.9g s^2"
            share_sum reported));
  let decomposed = Path_coeffs.layer_variances pa.Path_analysis.coeffs b in
  let decomposed_sum = Array.fold_left ( +. ) 0.0 decomposed in
  if not (close ~tol:tol_exact decomposed_sum reported) then
    add
      (err ~rule:"check-var-conservation" ~location:loc
         (Printf.sprintf
            "layer_variances decomposition sums to %.9g s^2, reported \
             intra variance is %.9g s^2"
            decomposed_sum reported));
  (* Discretized intra PDF against the analytic variance.  A degenerate
     analytic variance (single-layer budgets) yields a point-mass PDF
     whose base width is ~1e-12 relative — bound it absolutely instead
     of comparing relatively against 0. *)
  let v_pdf = Pdf.variance pa.Path_analysis.intra_pdf in
  if reported <= 1e-30 then begin
    if v_pdf > 1e-22 then
      add
        (err ~rule:"check-var-intra-pdf" ~location:loc
           (Printf.sprintf
              "analytic intra variance is 0 but the discretized PDF \
               carries variance %.3g s^2"
              v_pdf))
  end
  else if not (close ~tol:tol_grid v_pdf reported) then
    add
      (err ~rule:"check-var-intra-pdf" ~location:loc
         (Printf.sprintf
            "discretized intra variance %.6g s^2 deviates from the \
             analytic Eq. 14 value %.6g s^2 by more than %g%%"
            v_pdf reported (tol_grid *. 100.0)));
  (* Additivity: inter and intra are independent, so the convolution's
     variance is their sum.  The deposit step of the convolution smears
     by O(step^2). *)
  let v_inter = Pdf.variance pa.Path_analysis.inter_pdf in
  let v_total = Pdf.variance pa.Path_analysis.total_pdf in
  let step = pa.Path_analysis.total_pdf.Pdf.step in
  let expected = v_inter +. v_pdf in
  let slack = (tol_grid *. Float.max expected v_total) +. (step *. step) in
  if Float.abs (v_total -. expected) > slack then
    add
      (err ~rule:"check-var-additivity" ~location:loc
         (Printf.sprintf
            "total variance %.6g s^2 is not inter + intra = %.6g s^2 \
             within tolerance"
            v_total expected));
  List.rev !ds
