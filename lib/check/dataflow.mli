(** Generic monotone dataflow framework over the netlist DAG.

    A classic worklist solver: values from a user-supplied
    join-semilattice are attached to every node and iterated to the
    least fixpoint of

    {v value(n) = transfer n (init n  JOIN  join over preds p of value(p)) v}

    where the predecessors are the fan-ins in a [Forward] analysis and
    the fan-out consumers in a [Backward] one.  Because netlist node ids
    are topological by construction, the worklist is seeded in
    topological (respectively reverse-topological) order, so on a DAG
    with a monotone transfer function the solver converges in one pass
    per node plus re-visits only where joins refine.

    Termination on non-monotone or infinitely ascending inputs is
    guaranteed by widening: once a node has been updated [widen_after]
    times, further updates go through [D.widen], which must jump to an
    upper bound of any ascending chain in finitely many steps.  A hard
    per-node update cap backstops a broken widening; hitting it reports
    [converged = false] instead of looping. *)

type direction = Forward | Backward

(** What the framework needs from an abstract domain: a bottom element,
    a join, decidable equality, and a widening. *)
module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : prev:t -> next:t -> t
  (** Must be an upper bound of both arguments, and must stabilize any
      ascending chain in finitely many applications. *)

  val pp : Format.formatter -> t -> unit
end

module Make (D : DOMAIN) : sig
  type stats = {
    visits : int;  (** worklist pops *)
    updates : int;  (** value changes committed *)
    widenings : int;  (** updates that went through [D.widen] *)
    converged : bool;  (** false when the per-node cap stopped iteration *)
  }

  type result = { values : D.t array; stats : stats }

  val fixpoint :
    ?direction:direction ->
    ?widen_after:int ->
    ?max_updates_per_node:int ->
    Ssta_circuit.Netlist.t ->
    init:(int -> D.t) ->
    transfer:(node:int -> D.t -> D.t) ->
    result
  (** [fixpoint c ~init ~transfer] solves the equation above for every
      node id of [c].  [init] is each node's contribution independent of
      its predecessors (typically [D.bottom] everywhere except entry
      nodes); [transfer ~node v] maps the joined in-flow to the node's
      out-value and must be monotone for the result to be the least
      fixpoint.  Defaults: [direction = Forward], [widen_after = 8],
      [max_updates_per_node = 64]. *)
end
