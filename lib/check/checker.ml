module D = Ssta_lint.Diagnostic
module Engine = Ssta_lint.Engine
module Health = Ssta_runtime.Health
module Pdf = Ssta_prob.Pdf
module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Sta = Ssta_timing.Sta
module Budget = Ssta_correlation.Budget
module Config = Ssta_core.Config
module Methodology = Ssta_core.Methodology
module Path_analysis = Ssta_core.Path_analysis
module Ranking = Ssta_core.Ranking
module Report_ = Ssta_core.Report
module Pool = Ssta_parallel.Pool

type injection = Bad_budget | Bad_placement | Corrupt_pdf

type input = {
  circuit : Netlist.t;
  placement : Placement.t;
  config : Config.t;
  pdfsan : bool;
  path_limit : int;
  par_jobs : int option;
  inject : injection option;
}

let input ?(config = Config.default) ?placement ?(pdfsan = true)
    ?(path_limit = 64) ?par_jobs ?inject circuit =
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  { circuit; placement; config; pdfsan; path_limit; par_jobs; inject }

type report = {
  diagnostics : D.t list;
  nodes_certified : int;
  paths_certified : int;
  ops_audited : int;
  health : Health.t;
}

let own_checks =
  [ ("check-bound-domain",
     "the truncated parameter box stays inside the Elmore validity \
      domain");
    ("check-bound-arrival",
     "nominal labels and the critical delay lie inside the static \
      arrival intervals, and the forward/backward bounds agree");
    ("check-bound-nominal",
     "each certified path's nominal delay lies inside its static \
      interval");
    ("check-bound-support",
     "each certified path's inter/intra/total PDF support lies inside \
      its static interval");
    ("check-bound-quantile",
     "each certified path's mean and quantiles lie inside its static \
      interval");
    ("check-health",
     "numerical-health events of the certified run are surfaced");
    ("check-inter-cache-consistency",
     "each certified path's cached (scale-covariant) inter PDF matches \
      an uncached from-scratch recomputation within 1e-9 relative");
    ("check-parallel-determinism",
     "a parallel methodology run reproduces the sequential run's \
      report byte for byte");
    ("check-internal", "the verifier itself failed") ]

let all_checks =
  List.sort_uniq
    (fun (a, _) (b, _) -> String.compare a b)
    (own_checks @ Variance_check.checks @ Placement_check.checks
   @ Pdfsan.checks)

(* --- injections ------------------------------------------------------ *)

let apply_injection inp =
  match inp.inject with
  | None | Some Corrupt_pdf -> inp
  | Some Bad_budget ->
      (* A three-weight budget against the default 4+1 layer structure:
         structurally inconsistent, every weight still legal. *)
      let config =
        { inp.config with
          Config.budget = Budget.of_weights [| 0.4; 0.3; 0.3 |] }
      in
      { inp with config }
  | Some Bad_placement ->
      let pl = inp.placement in
      let coords = Array.copy pl.Placement.coords in
      let victim = Array.length coords - 1 in
      coords.(victim) <-
        (2.0 *. pl.Placement.die_width, 2.0 *. pl.Placement.die_height);
      { inp with placement = { pl with Placement.coords } }

let corrupt_event () =
  (* All-infinite densities normalize to NaN cells: the one corruption
     Pdf.make does not reject. *)
  let bad = Pdf.of_fun ~lo:0.0 ~hi:1.0 ~n:8 (fun _ -> infinity) in
  { Pdf.trace_op = "inject.corrupt-pdf";
    trace_expected = Some (0.0, 1.0);
    trace_mass_in = Some 1.0;
    trace_clamped = 0.0;
    trace_output = bad }

(* --- bound certification --------------------------------------------- *)

let rel_slack i = 1e-12 +. (1e-9 *. Interval.magnitude i)

let certify_labels (bounds : Arrival_bounds.t) (sta : Sta.t) add =
  let labels = sta.Sta.labels in
  let bad = ref 0 and example = ref (-1) in
  Array.iteri
    (fun id a ->
      let slack = rel_slack a in
      if not (Interval.contains ~slack a labels.(id)) then begin
        incr bad;
        if !example < 0 then example := id
      end)
    bounds.Arrival_bounds.arrival;
  if !bad > 0 then
    add
      (D.make ~rule:"check-bound-arrival" ~severity:D.Error
         ~location:D.Circuit
         (Printf.sprintf
            "%d nominal arrival labels escape their static interval \
             (first: node %d, label %.6g s, interval %s)"
            !bad !example
            labels.(!example)
            (Format.asprintf "%a" Interval.pp
               bounds.Arrival_bounds.arrival.(!example))));
  let circuit = bounds.Arrival_bounds.circuit in
  if
    not
      (Interval.contains ~slack:(rel_slack circuit) circuit
         sta.Sta.critical_delay)
  then
    add
      (D.make ~rule:"check-bound-arrival" ~severity:D.Error
         ~location:D.Circuit
         (Printf.sprintf
            "critical delay %.6g s escapes the static circuit interval %s"
            sta.Sta.critical_delay
            (Format.asprintf "%a" Interval.pp circuit)));
  (* Forward/backward duality: the worst path through any node cannot
     beat the circuit bound. *)
  (match Interval.range circuit with
  | None ->
      add
        (D.make ~rule:"check-bound-arrival" ~severity:D.Error
           ~location:D.Circuit "circuit arrival interval is empty")
  | Some (_, circuit_hi) ->
      let dual_bad = ref 0 in
      Array.iteri
        (fun id a ->
          let through = Interval.add a bounds.Arrival_bounds.suffix.(id) in
          match Interval.range through with
          | None -> ()
          | Some (_, hi) ->
              if hi > circuit_hi +. rel_slack through then incr dual_bad)
        bounds.Arrival_bounds.arrival;
      if !dual_bad > 0 then
        add
          (D.make ~rule:"check-bound-arrival" ~severity:D.Error
             ~location:D.Circuit
             (Printf.sprintf
                "forward/backward duality fails at %d nodes: arrival + \
                 suffix exceeds the circuit bound"
                !dual_bad)))

let pdf_support_slack (p : Pdf.t) interval =
  (2.0 *. p.Pdf.step) +. rel_slack interval +. (1e-3 *. Interval.magnitude interval)

let certify_path (bounds : Arrival_bounds.t) ~label (pa : Path_analysis.t) add =
  let interval = Arrival_bounds.path_total bounds pa.Path_analysis.path in
  let loc = D.Pdf label in
  if
    not
      (Interval.contains ~slack:(rel_slack interval) interval
         pa.Path_analysis.det_delay)
  then
    add
      (D.make ~rule:"check-bound-nominal" ~severity:D.Error ~location:loc
         (Printf.sprintf "nominal delay %.6g s escapes the static interval %s"
            pa.Path_analysis.det_delay
            (Format.asprintf "%a" Interval.pp interval)));
  let support_check name p i =
    let slack = pdf_support_slack p i in
    let sup = Interval.make ~lo:p.Pdf.lo ~hi:(Pdf.hi p) in
    if not (Interval.subset ~slack sup ~of_:i) then
      add
        (D.make ~rule:"check-bound-support" ~severity:D.Error ~location:loc
           (Printf.sprintf
              "%s PDF support [%.6g, %.6g] s escapes the static interval %s"
              name p.Pdf.lo (Pdf.hi p)
              (Format.asprintf "%a" Interval.pp i)))
  in
  support_check "total" pa.Path_analysis.total_pdf interval;
  support_check "inter" pa.Path_analysis.inter_pdf
    (Arrival_bounds.path_inter bounds pa.Path_analysis.path);
  let h = Arrival_bounds.path_intra_halfwidth bounds pa.Path_analysis.path in
  support_check "intra" pa.Path_analysis.intra_pdf
    (Interval.make ~lo:(-.h) ~hi:h);
  let total = pa.Path_analysis.total_pdf in
  let q_slack = pdf_support_slack total interval in
  List.iter
    (fun (name, v) ->
      if not (Interval.contains ~slack:q_slack interval v) then
        add
          (D.make ~rule:"check-bound-quantile" ~severity:D.Error
             ~location:loc
             (Printf.sprintf
                "%s %.6g s escapes the static interval %s" name v
                (Format.asprintf "%a" Interval.pp interval))))
    [ ("mean", pa.Path_analysis.mean);
      ("median", Pdf.quantile total 0.5);
      ("0.1% quantile", Pdf.quantile total 0.001);
      ("99.9% quantile", Pdf.quantile total 0.999);
      ("confidence point", pa.Path_analysis.confidence_point) ]

(* Recompute a certified path's inter PDF from scratch (no cache) and
   compare the statistics the methodology consumes against the stored —
   cached and rescaled — PDF.  The scale-covariant cache quantizes the
   normalized coefficient direction to 40 mantissa bits, so any
   divergence is bounded around 1e-12 relative; 1e-9 flags real damage
   (a stale kernel, a wrong rescale) without tripping on rounding. *)
let cache_consistency_tol = 1e-9

let check_cache_consistency tables ~label (pa : Path_analysis.t) add =
  let fresh = Ssta_core.Inter.of_coeffs tables pa.Path_analysis.coeffs in
  let stored = pa.Path_analysis.inter_pdf in
  let rel a b =
    Float.abs (a -. b)
    /. Float.max 1e-300 (Float.max (Float.abs a) (Float.abs b))
  in
  let worst = ref 0.0 and worst_stat = ref "" in
  let consider name a b =
    let r = rel a b in
    if r > !worst then begin
      worst := r;
      worst_stat := Printf.sprintf "%s (cached %.12g vs fresh %.12g)" name a b
    end
  in
  consider "mean" (Pdf.mean stored) (Pdf.mean fresh);
  consider "std" (Pdf.std stored) (Pdf.std fresh);
  List.iter
    (fun q ->
      consider
        (Printf.sprintf "quantile %g" q)
        (Pdf.quantile stored q) (Pdf.quantile fresh q))
    [ 0.001; 0.5; 0.999 ];
  if !worst > cache_consistency_tol then
    add
      (D.make ~rule:"check-inter-cache-consistency" ~severity:D.Error
         ~location:(D.Pdf label)
         (Printf.sprintf
            "cached inter PDF diverges from the uncached recomputation: \
             %s differs by %.3g relative (tolerance %g)"
            !worst_stat !worst cache_consistency_tol))

(* --- driver ---------------------------------------------------------- *)

let run inp =
  let inp = apply_injection inp in
  let { circuit; placement; config; pdfsan; path_limit; par_jobs; inject } =
    inp
  in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let nodes_certified = ref 0 and paths_certified = ref 0 in
  let health = Health.create () in
  let san = Pdfsan.create ~health () in
  (* Static phase. *)
  List.iter add (Variance_check.check_config config);
  List.iter add (Placement_check.check config circuit placement);
  let static_clean = not (Engine.has_errors !ds) in
  (* Injected PDF corruption is audited even when the static phase (or
     the pdfsan flag) would skip the dynamic run. *)
  if inject = Some Corrupt_pdf then Pdfsan.audit san (corrupt_event ());
  if static_clean then begin
    let sta = Sta.analyze circuit in
    (match Arrival_bounds.compute config sta.Sta.graph with
    | Error msg ->
        add
          (D.make ~rule:"check-bound-domain" ~severity:D.Error
             ~location:D.Config
             (Printf.sprintf
                "static bounds are not computable: %s (truncated \
                 parameter box leaves the delay model's domain)"
                msg))
    | Ok bounds ->
        certify_labels bounds sta add;
        nodes_certified := Array.length bounds.Arrival_bounds.arrival;
        (* Dynamic phase: a full methodology run under the sanitizer. *)
        if pdfsan then Pdfsan.install san;
        let result =
          Fun.protect ~finally:Pdfsan.uninstall (fun () ->
              Methodology.analyze ~config ~placement circuit)
        in
        (match result with
        | Error e -> add (D.of_error e)
        | Ok m ->
            let ranked = m.Methodology.ranked in
            let total = Array.length ranked in
            let limit =
              if path_limit <= 0 then total else Int.min path_limit total
            in
            (* Fresh tables for the cache cross-check: a deterministic
               function of the (possibly budget-clamped) config the run
               actually used. *)
            let cache_tables =
              if config.Config.inter_cache then
                Some (Ssta_core.Inter.tables m.Methodology.config)
              else None
            in
            for i = 0 to limit - 1 do
              let r = ranked.(i) in
              let label = Printf.sprintf "path#%d" r.Ranking.prob_rank in
              let pa = r.Ranking.analysis in
              certify_path bounds ~label pa add;
              (match cache_tables with
              | Some t -> check_cache_consistency t ~label pa add
              | None -> ());
              List.iter add
                (Variance_check.check_path config
                   ~num_nodes:(Netlist.num_nodes circuit)
                   ~label pa)
            done;
            paths_certified := limit;
            if limit < total then
              add
                (D.make ~rule:"check-health" ~severity:D.Info
                   ~location:D.Circuit
                   (Printf.sprintf
                      "certified %d of %d analyzed paths (raise the path \
                       limit for full coverage)"
                      limit total));
            Health.merge ~into:health m.Methodology.health;
            (* Parallel determinism: rerun the whole flow on a worker
               pool (without the sanitizer — its trace hook is a
               process-global that must not observe worker domains) and
               demand a byte-identical deterministic report: same PDFs,
               same ranking, same degradations, same health counters. *)
            (match par_jobs with
            | None -> ()
            | Some jobs -> (
                let par =
                  Pool.with_pool ~jobs (fun pool ->
                      Methodology.analyze ~config ~placement ~pool circuit)
                in
                match par with
                | Error e -> add (D.of_error e)
                | Ok p ->
                    let js = Report_.json_report m in
                    let jp = Report_.json_report p in
                    if not (String.equal js jp) then begin
                      let n = Int.min (String.length js) (String.length jp) in
                      let i = ref 0 in
                      while !i < n && js.[!i] = jp.[!i] do
                        incr i
                      done;
                      add
                        (D.make ~rule:"check-parallel-determinism"
                           ~severity:D.Error ~location:D.Circuit
                           (Printf.sprintf
                              "parallel run (%d jobs) diverges from the \
                               sequential report at byte %d (lengths %d \
                               vs %d)"
                              jobs !i (String.length js)
                              (String.length jp)))
                    end));
            if not (Health.is_clean m.Methodology.health) then begin
              let defect, op = Health.worst_defect m.Methodology.health in
              add
                (D.make ~rule:"check-health" ~severity:D.Info
                   ~location:D.Circuit
                   (Printf.sprintf
                      "run recorded %d numerical-health events (worst \
                       defect %.3g%s)"
                      (Health.count m.Methodology.health)
                      defect
                      (if op = "" then "" else " in " ^ op)))
            end))
  end;
  List.iter add (Pdfsan.findings san);
  if Pdfsan.dropped san > 0 then
    add
      (D.make ~rule:"check-health" ~severity:D.Info ~location:D.Circuit
         (Printf.sprintf "%d sanitizer findings dropped beyond the cap"
            (Pdfsan.dropped san)));
  { diagnostics = List.stable_sort D.compare (List.rev !ds);
    nodes_certified = !nodes_certified;
    paths_certified = !paths_certified;
    ops_audited = Pdfsan.ops san;
    health }
