module D = Ssta_lint.Diagnostic
module Engine = Ssta_lint.Engine
module Health = Ssta_runtime.Health
module Pdf = Ssta_prob.Pdf
module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Sta = Ssta_timing.Sta
module Budget = Ssta_correlation.Budget
module Config = Ssta_core.Config
module Methodology = Ssta_core.Methodology
module Path_analysis = Ssta_core.Path_analysis
module Ranking = Ssta_core.Ranking
module Report_ = Ssta_core.Report
module Monte_carlo = Ssta_core.Monte_carlo
module Paths = Ssta_timing.Paths
module Params = Ssta_tech.Params
module Path_coeffs = Ssta_correlation.Path_coeffs
module Rng = Ssta_prob.Rng
module Pool = Ssta_parallel.Pool
module Block_engine = Ssta_block.Engine

type injection = Bad_budget | Bad_placement | Corrupt_pdf

type input = {
  circuit : Netlist.t;
  placement : Placement.t;
  config : Config.t;
  pdfsan : bool;
  path_limit : int;
  par_jobs : int option;
  inject : injection option;
  only : string list;
  impact_edits : int;
  impact_seed : int;
  should_stop : unit -> bool;
}

let input ?(config = Config.default) ?placement ?(pdfsan = true)
    ?(path_limit = 64) ?par_jobs ?inject ?(only = []) ?(impact_edits = 1)
    ?(impact_seed = 7) ?(should_stop = fun () -> false) circuit =
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  { circuit;
    placement;
    config;
    pdfsan;
    path_limit;
    par_jobs;
    inject;
    only;
    impact_edits;
    impact_seed;
    should_stop }

type report = {
  diagnostics : D.t list;
  nodes_certified : int;
  paths_certified : int;
  ops_audited : int;
  health : Health.t;
}

let own_checks =
  [ ("check-bound-domain",
     "the truncated parameter box stays inside the Elmore validity \
      domain");
    ("check-bound-arrival",
     "nominal labels and the critical delay lie inside the static \
      arrival intervals, and the forward/backward bounds agree");
    ("check-bound-nominal",
     "each certified path's nominal delay lies inside its static \
      interval");
    ("check-bound-support",
     "each certified path's inter/intra/total PDF support lies inside \
      its static interval");
    ("check-bound-quantile",
     "each certified path's mean and quantiles lie inside its static \
      interval");
    ("check-affine-containment",
     "each certified path's Eq. (14) sensitivity vector lies inside the \
      affine coefficient intervals, and Monte-Carlo samples of the \
      circuit delay fall inside the affine truncation envelope");
    ("check-affine-variance",
     "each certified path's Eq. (14) inter/intra variance split is \
      bounded by the affine sensitivity analysis");
    ("check-affine-screen",
     "the affine path screener's pruned enumeration reproduces the \
      unpruned near-critical path set byte for byte");
    ("check-block-vs-path",
     "the block-based engine's circuit arrival agrees with the \
      path-based answer and a fixed-seed Monte-Carlo reference within \
      mean/sigma/quantile tolerances");
    ("check-health",
     "numerical-health events of the certified run are surfaced");
    ("check-impact-equivalence",
     "incremental re-analysis after a seeded random edit splices cached \
      path results into a report byte-identical to a from-scratch run");
    ("check-interrupted",
     "verification stopped on a cooperative cancellation request; the \
      certified results cover the completed prefix only");
    ("check-inter-cache-consistency",
     "each certified path's cached (scale-covariant) inter PDF matches \
      an uncached from-scratch recomputation within 1e-9 relative");
    ("check-parallel-determinism",
     "a parallel methodology run reproduces the sequential run's \
      report byte for byte");
    ("check-internal", "the verifier itself failed") ]

let all_checks =
  List.sort_uniq
    (fun (a, _) (b, _) -> String.compare a b)
    (own_checks @ Variance_check.checks @ Placement_check.checks
   @ Pdfsan.checks)

(* --- injections ------------------------------------------------------ *)

let apply_injection inp =
  match inp.inject with
  | None | Some Corrupt_pdf -> inp
  | Some Bad_budget ->
      (* A three-weight budget against the default 4+1 layer structure:
         structurally inconsistent, every weight still legal. *)
      let config =
        { inp.config with
          Config.budget = Budget.of_weights [| 0.4; 0.3; 0.3 |] }
      in
      { inp with config }
  | Some Bad_placement ->
      let pl = inp.placement in
      let coords = Array.copy pl.Placement.coords in
      let victim = Array.length coords - 1 in
      coords.(victim) <-
        (2.0 *. pl.Placement.die_width, 2.0 *. pl.Placement.die_height);
      { inp with placement = { pl with Placement.coords } }

let corrupt_event () =
  (* All-infinite densities normalize to NaN cells: the one corruption
     Pdf.make does not reject. *)
  let bad = Pdf.of_fun ~lo:0.0 ~hi:1.0 ~n:8 (fun _ -> infinity) in
  { Pdf.trace_op = "inject.corrupt-pdf";
    trace_expected = Some (0.0, 1.0);
    trace_mass_in = Some 1.0;
    trace_clamped = 0.0;
    trace_output = bad }

(* --- bound certification --------------------------------------------- *)

let rel_slack i = 1e-12 +. (1e-9 *. Interval.magnitude i)

let certify_labels (bounds : Arrival_bounds.t) (sta : Sta.t) add =
  let labels = sta.Sta.labels in
  let bad = ref 0 and example = ref (-1) in
  Array.iteri
    (fun id a ->
      let slack = rel_slack a in
      if not (Interval.contains ~slack a labels.(id)) then begin
        incr bad;
        if !example < 0 then example := id
      end)
    bounds.Arrival_bounds.arrival;
  if !bad > 0 then
    add
      (D.make ~rule:"check-bound-arrival" ~severity:D.Error
         ~location:D.Circuit
         (Printf.sprintf
            "%d nominal arrival labels escape their static interval \
             (first: node %d, label %.6g s, interval %s)"
            !bad !example
            labels.(!example)
            (Format.asprintf "%a" Interval.pp
               bounds.Arrival_bounds.arrival.(!example))));
  let circuit = bounds.Arrival_bounds.circuit in
  if
    not
      (Interval.contains ~slack:(rel_slack circuit) circuit
         sta.Sta.critical_delay)
  then
    add
      (D.make ~rule:"check-bound-arrival" ~severity:D.Error
         ~location:D.Circuit
         (Printf.sprintf
            "critical delay %.6g s escapes the static circuit interval %s"
            sta.Sta.critical_delay
            (Format.asprintf "%a" Interval.pp circuit)));
  (* Forward/backward duality: the worst path through any node cannot
     beat the circuit bound. *)
  (match Interval.range circuit with
  | None ->
      add
        (D.make ~rule:"check-bound-arrival" ~severity:D.Error
           ~location:D.Circuit "circuit arrival interval is empty")
  | Some (_, circuit_hi) ->
      let dual_bad = ref 0 in
      Array.iteri
        (fun id a ->
          let through = Interval.add a bounds.Arrival_bounds.suffix.(id) in
          match Interval.range through with
          | None -> ()
          | Some (_, hi) ->
              if hi > circuit_hi +. rel_slack through then incr dual_bad)
        bounds.Arrival_bounds.arrival;
      if !dual_bad > 0 then
        add
          (D.make ~rule:"check-bound-arrival" ~severity:D.Error
             ~location:D.Circuit
             (Printf.sprintf
                "forward/backward duality fails at %d nodes: arrival + \
                 suffix exceeds the circuit bound"
                !dual_bad)))

let pdf_support_slack (p : Pdf.t) interval =
  (2.0 *. p.Pdf.step) +. rel_slack interval +. (1e-3 *. Interval.magnitude interval)

let certify_path (bounds : Arrival_bounds.t) ~label (pa : Path_analysis.t) add =
  let interval = Arrival_bounds.path_total bounds pa.Path_analysis.path in
  let loc = D.Pdf label in
  if
    not
      (Interval.contains ~slack:(rel_slack interval) interval
         pa.Path_analysis.det_delay)
  then
    add
      (D.make ~rule:"check-bound-nominal" ~severity:D.Error ~location:loc
         (Printf.sprintf "nominal delay %.6g s escapes the static interval %s"
            pa.Path_analysis.det_delay
            (Format.asprintf "%a" Interval.pp interval)));
  let support_check name p i =
    let slack = pdf_support_slack p i in
    let sup = Interval.make ~lo:p.Pdf.lo ~hi:(Pdf.hi p) in
    if not (Interval.subset ~slack sup ~of_:i) then
      add
        (D.make ~rule:"check-bound-support" ~severity:D.Error ~location:loc
           (Printf.sprintf
              "%s PDF support [%.6g, %.6g] s escapes the static interval %s"
              name p.Pdf.lo (Pdf.hi p)
              (Format.asprintf "%a" Interval.pp i)))
  in
  support_check "total" pa.Path_analysis.total_pdf interval;
  support_check "inter" pa.Path_analysis.inter_pdf
    (Arrival_bounds.path_inter bounds pa.Path_analysis.path);
  let h = Arrival_bounds.path_intra_halfwidth bounds pa.Path_analysis.path in
  support_check "intra" pa.Path_analysis.intra_pdf
    (Interval.make ~lo:(-.h) ~hi:h);
  let total = pa.Path_analysis.total_pdf in
  let q_slack = pdf_support_slack total interval in
  List.iter
    (fun (name, v) ->
      if not (Interval.contains ~slack:q_slack interval v) then
        add
          (D.make ~rule:"check-bound-quantile" ~severity:D.Error
             ~location:loc
             (Printf.sprintf
                "%s %.6g s escapes the static interval %s" name v
                (Format.asprintf "%a" Interval.pp interval))))
    [ ("mean", pa.Path_analysis.mean);
      ("median", Pdf.quantile total 0.5);
      ("0.1% quantile", Pdf.quantile total 0.001);
      ("99.9% quantile", Pdf.quantile total 0.999);
      ("confidence point", pa.Path_analysis.confidence_point) ]

(* Recompute a certified path's inter PDF from scratch (no cache) and
   compare the statistics the methodology consumes against the stored —
   cached and rescaled — PDF.  The scale-covariant cache quantizes the
   normalized coefficient direction to 40 mantissa bits, so any
   divergence is bounded around 1e-12 relative; 1e-9 flags real damage
   (a stale kernel, a wrong rescale) without tripping on rounding. *)
let cache_consistency_tol = 1e-9

let check_cache_consistency tables ~label (pa : Path_analysis.t) add =
  let fresh = Ssta_core.Inter.of_coeffs tables pa.Path_analysis.coeffs in
  let stored = pa.Path_analysis.inter_pdf in
  let rel a b =
    Float.abs (a -. b)
    /. Float.max 1e-300 (Float.max (Float.abs a) (Float.abs b))
  in
  let worst = ref 0.0 and worst_stat = ref "" in
  let consider name a b =
    let r = rel a b in
    if r > !worst then begin
      worst := r;
      worst_stat := Printf.sprintf "%s (cached %.12g vs fresh %.12g)" name a b
    end
  in
  consider "mean" (Pdf.mean stored) (Pdf.mean fresh);
  consider "std" (Pdf.std stored) (Pdf.std fresh);
  List.iter
    (fun q ->
      consider
        (Printf.sprintf "quantile %g" q)
        (Pdf.quantile stored q) (Pdf.quantile fresh q))
    [ 0.001; 0.5; 0.999 ];
  if !worst > cache_consistency_tol then
    add
      (D.make ~rule:"check-inter-cache-consistency" ~severity:D.Error
         ~location:(D.Pdf label)
         (Printf.sprintf
            "cached inter PDF diverges from the uncached recomputation: \
             %s differs by %.3g relative (tolerance %g)"
            !worst_stat !worst cache_consistency_tol))

(* --- affine certification -------------------------------------------- *)

(* Eq. (14) vs the affine domain, per certified path.  The path's inter
   coefficient per RV is the linearized (sum of gradients) * sigma *
   sqrt w0 — exactly what the affine gate forms accumulate, up to
   association order of the float sum, so a tight relative tolerance
   applies.  The analytic intra sigma comes from
   [Path_coeffs.intra_variance] (the exact Eq. 14 value, no PDF-grid
   error) and must be bounded by the affine [intra_sigma] — a theorem
   by the triangle inequality, whatever the layer partitioning. *)
let check_affine_path config (aff : Affine.analysis) ~check_containment
    ~check_variance ~label (pa : Path_analysis.t) add =
  match Affine.path_form aff pa.Path_analysis.path with
  | Affine.Bottom ->
      add
        (D.make ~rule:"check-affine-containment" ~severity:D.Error
           ~location:(D.Pdf label)
           "affine path form is bottom for an analyzed path")
  | Affine.Form f ->
      let budget = config.Config.budget in
      let sqrt_w0 = sqrt (Budget.inter_fraction budget) in
      let coeffs = pa.Path_analysis.coeffs in
      let path_coeff rv =
        Params.get coeffs.Path_coeffs.grad_sum rv *. Params.sigma rv
        *. sqrt_w0
      in
      if check_containment then
        List.iteri
          (fun i rv ->
            let c = path_coeff rv in
            let iv = f.Affine.coeffs.(i) in
            let slack =
              1e-15
              +. (1e-9 *. Float.max (Interval.magnitude iv) (Float.abs c))
            in
            if not (Interval.contains ~slack iv c) then
              add
                (D.make ~rule:"check-affine-containment" ~severity:D.Error
                   ~location:(D.Pdf label)
                   (Printf.sprintf
                      "Eq. (14) sensitivity %.6g s of %s escapes the \
                       affine coefficient interval %s"
                      c (Params.rv_name rv)
                      (Format.asprintf "%a" Interval.pp iv))))
          Params.all_rvs;
      if check_variance then begin
        let inter_path =
          sqrt
            (List.fold_left
               (fun acc rv ->
                 let c = path_coeff rv in
                 acc +. (c *. c))
               0.0 Params.all_rvs)
        in
        let inter_bound =
          sqrt
            (Array.fold_left
               (fun acc iv ->
                 let m = Interval.magnitude iv in
                 acc +. (m *. m))
               0.0 f.Affine.coeffs)
        in
        let tol x = 1e-15 +. (1e-9 *. Float.abs x) in
        if inter_path > inter_bound +. tol inter_bound then
          add
            (D.make ~rule:"check-affine-variance" ~severity:D.Error
               ~location:(D.Pdf label)
               (Printf.sprintf
                  "Eq. (14) inter sigma %.6g s exceeds the affine bound \
                   %.6g s"
                  inter_path inter_bound));
        let intra_path = sqrt (Path_coeffs.intra_variance coeffs budget) in
        if intra_path > f.Affine.intra_sigma +. tol f.Affine.intra_sigma
        then
          add
            (D.make ~rule:"check-affine-variance" ~severity:D.Error
               ~location:(D.Pdf label)
               (Printf.sprintf
                  "Eq. (14) intra sigma %.6g s exceeds the affine bound \
                   %.6g s"
                  intra_path f.Affine.intra_sigma))
      end

(* Circuit-level Monte-Carlo envelope: every sampled critical delay
   must land inside the concretization of the circuit's affine form at
   the configured truncation (samples are drawn from the same truncated
   parameter model).  Fixed seed: the check is deterministic. *)
let mc_envelope_samples = 200

let check_affine_envelope config (aff : Affine.analysis) sta placement add =
  let env = Affine.concretize ~trunc:aff.Affine.trunc aff.Affine.circuit in
  let sampler = Monte_carlo.sampler config sta.Sta.graph placement in
  let rng = Rng.create 1 in
  let samples =
    Monte_carlo.circuit_delay_samples sampler ~n:mc_envelope_samples rng
  in
  let slack = rel_slack env in
  let bad = ref 0 and worst = ref neg_infinity in
  Array.iter
    (fun s ->
      if not (Interval.contains ~slack env s) then begin
        incr bad;
        if s > !worst then worst := s
      end)
    samples;
  if !bad > 0 then
    add
      (D.make ~rule:"check-affine-containment" ~severity:D.Error
         ~location:D.Circuit
         (Printf.sprintf
            "%d of %d Monte-Carlo circuit delays escape the affine \
             envelope %s (worst %.6g s)"
            !bad mc_envelope_samples
            (Format.asprintf "%a" Interval.pp env)
            !worst))

(* Proof obligation of the static screener: rerun the near-critical
   enumeration with and without the prune hook and demand byte-equal
   records — paths, order, delays, explored count, flags. *)
let render_enumeration (e : Paths.enumeration) =
  let b = Buffer.create 4096 in
  List.iter
    (fun p ->
      Buffer.add_string b (Printf.sprintf "%.17g|" p.Paths.delay);
      Array.iter
        (fun id ->
          Buffer.add_string b (string_of_int id);
          Buffer.add_char b ',')
        p.Paths.nodes;
      Buffer.add_char b '\n')
    e.Paths.paths;
  Buffer.add_string b
    (Printf.sprintf "explored=%d truncated=%b deadline=%b" e.Paths.explored
       e.Paths.truncated e.Paths.deadline_hit);
  Buffer.contents b

let check_affine_screen config (aff : Affine.analysis) sta ~slack add =
  let sc = Affine.screen aff sta ~slack in
  let max_paths = config.Config.max_paths in
  let base = Sta.near_critical ~max_paths sta ~slack in
  let pruned =
    Sta.near_critical ~max_paths ~prune:(Affine.prune_hook sc) sta ~slack
  in
  let sb = render_enumeration base and sp = render_enumeration pruned in
  if String.equal sb sp then
    add
      (D.make ~rule:"check-affine-screen" ~severity:D.Info
         ~location:D.Circuit
         (Printf.sprintf
            "screener pruned %d of %d nodes; pruned enumeration is \
             byte-identical (%d paths)"
            sc.Affine.nodes_pruned sc.Affine.nodes_visited
            (List.length base.Paths.paths)))
  else begin
    let n = Int.min (String.length sb) (String.length sp) in
    let i = ref 0 in
    while !i < n && sb.[!i] = sp.[!i] do
      incr i
    done;
    add
      (D.make ~rule:"check-affine-screen" ~severity:D.Error
         ~location:D.Circuit
         (Printf.sprintf
            "pruned enumeration diverges from the unpruned one at byte \
             %d (%d vs %d paths, %d of %d nodes pruned)"
            !i
            (List.length pruned.Paths.paths)
            (List.length base.Paths.paths)
            sc.Affine.nodes_pruned sc.Affine.nodes_visited))
  end

(* --- block-vs-path cross-validation ---------------------------------- *)

(* The block engine answers the same question as the path-based flow by
   a completely different route (one topological pass vs per-path
   analysis), so agreement is strong evidence for both.  Three gates:
   the block circuit arrival must dominate the probabilistic critical
   path (the circuit max is at least any single path) without escaping
   the worst-case corner, and its mean/sigma/median must sit inside the
   confidence band of a fixed-seed Monte-Carlo reference. *)
let block_vs_path_samples = 200

let check_block_vs_path config circuit placement (m : Methodology.t) add =
  let r = Block_engine.analyze ~config ~placement circuit in
  let prob = m.Methodology.prob_critical.Ranking.analysis in
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        ok := false;
        add
          (D.make ~rule:"check-block-vs-path" ~severity:D.Error
             ~location:D.Circuit msg))
      fmt
  in
  let rel = 0.02 in
  if r.Block_engine.mean < prob.Path_analysis.mean *. (1.0 -. rel) then
    fail
      "block circuit mean %.6g s falls below the probabilistic critical \
       path mean %.6g s (the circuit max dominates every path)"
      r.Block_engine.mean prob.Path_analysis.mean;
  if
    r.Block_engine.confidence_point
    > prob.Path_analysis.worst_case *. (1.0 +. rel)
  then
    fail
      "block confidence point %.6g s exceeds the worst-case corner %.6g s"
      r.Block_engine.confidence_point prob.Path_analysis.worst_case;
  let sampler =
    Monte_carlo.sampler config r.Block_engine.sta.Sta.graph placement
  in
  let samples =
    Monte_carlo.circuit_delay_samples sampler ~n:block_vs_path_samples
      (Rng.create 2)
  in
  let n = float_of_int (Array.length samples) in
  let mc_mean = Array.fold_left ( +. ) 0.0 samples /. n in
  let mc_std =
    sqrt
      (Array.fold_left
         (fun acc d -> acc +. ((d -. mc_mean) *. (d -. mc_mean)))
         0.0 samples
      /. (n -. 1.0))
  in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let mc_median =
    let h = Array.length sorted / 2 in
    0.5 *. (sorted.(h - 1) +. sorted.(h))
  in
  let se = mc_std /. sqrt n in
  let mean_tol = (4.0 *. se) +. (0.01 *. Float.abs mc_mean) in
  if Float.abs (r.Block_engine.mean -. mc_mean) > mean_tol then
    fail "block mean %.6g s outside the MC band %.6g +- %.6g s"
      r.Block_engine.mean mc_mean mean_tol;
  if Float.abs (r.Block_engine.std -. mc_std) > 0.35 *. mc_std then
    fail "block sigma %.6g s disagrees with MC sigma %.6g s (>35%%)"
      r.Block_engine.std mc_std;
  let median = Pdf.quantile r.Block_engine.pdf 0.5 in
  (* The sample median's standard error is ~1.2533 sigma / sqrt(n). *)
  let median_tol = (5.0 *. se) +. (0.01 *. Float.abs mc_mean) in
  if Float.abs (median -. mc_median) > median_tol then
    fail "block median %.6g s outside the MC band %.6g +- %.6g s" median
      mc_median median_tol;
  if !ok then
    add
      (D.make ~rule:"check-block-vs-path" ~severity:D.Info
         ~location:D.Circuit
         (Printf.sprintf
            "block engine (%s max) agrees: mean %.6g s vs path %.6g s \
             and MC %.6g s; sigma %.6g s vs MC %.6g s (%d samples)"
            (Config.max_policy_name config.Config.block_max)
            r.Block_engine.mean prob.Path_analysis.mean mc_mean
            r.Block_engine.std mc_std block_vs_path_samples))

(* --- incremental-equivalence certification --------------------------- *)

(* Apply seeded random single-gate edits one after another to a warm
   incremental image and demand, after every edit, that the spliced
   incremental report is byte-identical to a from-scratch run of the
   same (edited) design.  Both runs are warm-backed, so both reports
   exclude the history-dependent cache counters; any byte of divergence
   is a real soundness hole in the dirty-set/cone logic. *)
let check_impact_equivalence ~config ~circuit ~placement ~edits ~seed ~stop
    add =
  let design = Impact.design ~placement ~config circuit in
  match Impact.init design with
  | Error e -> add (D.of_error e)
  | Ok (state, _baseline) -> (
      let rng = Rng.create seed in
      try
        for k = 1 to edits do
          if stop () then raise Exit;
          let script =
            Impact.random_edits ~rng ~count:1 (Impact.design_of state)
          in
          let label = Ssta_circuit.Edit.describe script in
          match Impact.reanalyze state script with
          | Error e ->
              add (D.of_error e);
              raise Exit
          | Ok o -> (
              match Impact.scratch (Impact.design_of state) with
              | Error e ->
                  add (D.of_error e);
                  raise Exit
              | Ok sm ->
                  let ji = Report_.json_report o.Impact.report in
                  let js = Report_.json_report sm in
                  if String.equal ji js then
                    add
                      (D.make ~rule:"check-impact-equivalence"
                         ~severity:D.Info ~location:D.Circuit
                         (Printf.sprintf
                            "edit %d (%s): incremental report \
                             byte-identical to from-scratch (%d bytes; \
                             cone %d nodes, %d paths reused, %d \
                             reanalyzed)"
                            k label (String.length ji)
                            o.Impact.cone.Impact.cone_nodes o.Impact.reused
                            o.Impact.reanalyzed))
                  else begin
                    let n = Int.min (String.length ji) (String.length js) in
                    let i = ref 0 in
                    while !i < n && ji.[!i] = js.[!i] do
                      incr i
                    done;
                    add
                      (D.make ~rule:"check-impact-equivalence"
                         ~severity:D.Error ~location:D.Circuit
                         (Printf.sprintf
                            "edit %d (%s): incremental report diverges \
                             from the from-scratch run at byte %d \
                             (lengths %d vs %d; cone %d nodes, %d \
                             reused, %d reanalyzed)"
                            k label !i (String.length ji)
                            (String.length js)
                            o.Impact.cone.Impact.cone_nodes o.Impact.reused
                            o.Impact.reanalyzed))
                  end)
        done
      with Exit -> ())

(* --- driver ---------------------------------------------------------- *)

(* Check ids whose evidence comes from the static phase alone; with
   [--only] restricted to these, the dynamic run is skipped entirely. *)
let static_ids =
  "check-var-budget" :: List.map fst Placement_check.checks

let run inp =
  let inp = apply_injection inp in
  let { circuit;
        placement;
        config;
        pdfsan;
        path_limit;
        par_jobs;
        inject;
        only;
        impact_edits;
        impact_seed;
        should_stop } =
    inp
  in
  let selected id = only = [] || List.mem id only in
  let any_selected ids = List.exists selected ids in
  (* The main methodology run feeds every dynamic check except the
     impact-equivalence phase, which performs its own runs — selecting
     only that id skips the main run entirely. *)
  let main_needed =
    only = []
    || List.exists
         (fun id ->
           (not (List.mem id static_ids))
           && id <> "check-impact-equivalence")
         only
  in
  (* Latching cancellation: once the external hook trips, every later
     poll answers true, so the phases wind down in order and the report
     describes a clean prefix. *)
  let interrupted = ref false in
  let stop () =
    if (not !interrupted) && should_stop () then interrupted := true;
    !interrupted
  in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let nodes_certified = ref 0 and paths_certified = ref 0 in
  let health = Health.create () in
  let san = Pdfsan.create ~health () in
  (* Static phase: always runs — static errors gate the dynamic phase
     whatever the selection, and stay visible through the filter. *)
  List.iter add (Variance_check.check_config config);
  List.iter add (Placement_check.check config circuit placement);
  let static_clean = not (Engine.has_errors !ds) in
  (* Injected PDF corruption is audited even when the static phase (or
     the pdfsan flag) would skip the dynamic run. *)
  if inject = Some Corrupt_pdf then Pdfsan.audit san (corrupt_event ());
  if static_clean && main_needed then begin
    let sta = Sta.analyze circuit in
    (match Arrival_bounds.compute config sta.Sta.graph with
    | Error msg ->
        add
          (D.make ~rule:"check-bound-domain" ~severity:D.Error
             ~location:D.Config
             (Printf.sprintf
                "static bounds are not computable: %s (truncated \
                 parameter box leaves the delay model's domain)"
                msg))
    | Ok bounds ->
        certify_labels bounds sta add;
        nodes_certified := Array.length bounds.Arrival_bounds.arrival;
        let affine_ids =
          [ "check-affine-containment";
            "check-affine-variance";
            "check-affine-screen" ]
        in
        let affine =
          if any_selected affine_ids then
            match Affine.compute config sta.Sta.graph with
            | Ok aff -> Some aff
            | Error msg ->
                (* Arrival_bounds succeeded on the same corners, so
                   this is a verifier bug, not a domain failure. *)
                add
                  (D.make ~rule:"check-internal" ~severity:D.Error
                     ~location:D.Config
                     (Printf.sprintf "affine analysis failed: %s" msg));
                None
          else None
        in
        (match affine with
        | Some aff when selected "check-affine-containment" ->
            check_affine_envelope config aff sta placement add
        | _ -> ());
        (* Dynamic phase: a full methodology run under the sanitizer. *)
        if pdfsan && any_selected (List.map fst Pdfsan.checks) then
          Pdfsan.install san;
        let result =
          Fun.protect ~finally:Pdfsan.uninstall (fun () ->
              Methodology.analyze ~config ~cancelled:stop ~placement circuit)
        in
        (match result with
        | Error e -> add (D.of_error e)
        | Ok m ->
            let ranked = m.Methodology.ranked in
            let total = Array.length ranked in
            let limit =
              if path_limit <= 0 then total else Int.min path_limit total
            in
            (* Fresh tables for the cache cross-check: a deterministic
               function of the (possibly budget-clamped) config the run
               actually used. *)
            let cache_tables =
              if config.Config.inter_cache then
                Some (Ssta_core.Inter.tables m.Methodology.config)
              else None
            in
            let bound_path_ids =
              [ "check-bound-nominal";
                "check-bound-support";
                "check-bound-quantile" ]
            in
            let var_path_ids =
              List.filter
                (fun id -> not (String.equal id "check-var-budget"))
                (List.map fst Variance_check.checks)
            in
            (try
               for i = 0 to limit - 1 do
                 if stop () then raise Exit;
                 let r = ranked.(i) in
                 let label = Printf.sprintf "path#%d" r.Ranking.prob_rank in
                 let pa = r.Ranking.analysis in
                 if any_selected bound_path_ids then
                   certify_path bounds ~label pa add;
                 (match cache_tables with
                 | Some t when selected "check-inter-cache-consistency" ->
                     check_cache_consistency t ~label pa add
                 | _ -> ());
                 if any_selected var_path_ids then
                   List.iter add
                     (Variance_check.check_path config
                        ~num_nodes:(Netlist.num_nodes circuit)
                        ~label pa);
                 (match affine with
                 | Some aff ->
                     let check_containment =
                       selected "check-affine-containment"
                     in
                     let check_variance = selected "check-affine-variance" in
                     if check_containment || check_variance then
                       check_affine_path config aff ~check_containment
                         ~check_variance ~label pa add
                 | None -> ());
                 paths_certified := i + 1
               done
             with Exit -> ());
            if limit < total then
              add
                (D.make ~rule:"check-health" ~severity:D.Info
                   ~location:D.Circuit
                   (Printf.sprintf
                      "certified %d of %d analyzed paths (raise the path \
                       limit for full coverage)"
                      limit total));
            (match affine with
            | Some aff
              when selected "check-affine-screen" && not (stop ()) ->
                check_affine_screen config aff sta ~slack:m.Methodology.slack
                  add
            | _ -> ());
            if selected "check-block-vs-path" && not (stop ()) then
              check_block_vs_path config circuit placement m add;
            Health.merge ~into:health m.Methodology.health;
            (* Parallel determinism: rerun the whole flow on a worker
               pool (without the sanitizer — its trace hook is a
               process-global that must not observe worker domains) and
               demand a byte-identical deterministic report: same PDFs,
               same ranking, same degradations, same health counters. *)
            (match par_jobs with
            | None -> ()
            | Some _ when not (selected "check-parallel-determinism") -> ()
            | Some _ when stop () ->
                (* The sequential run may itself have been cut short by
                   the cancellation; a fresh complete parallel run would
                   diverge for timing reasons, not determinism bugs. *)
                ()
            | Some jobs -> (
                let par =
                  Pool.with_pool ~jobs (fun pool ->
                      Methodology.analyze ~config ~placement ~pool circuit)
                in
                match par with
                | Error e -> add (D.of_error e)
                | Ok p ->
                    let js = Report_.json_report m in
                    let jp = Report_.json_report p in
                    if not (String.equal js jp) then begin
                      let n = Int.min (String.length js) (String.length jp) in
                      let i = ref 0 in
                      while !i < n && js.[!i] = jp.[!i] do
                        incr i
                      done;
                      add
                        (D.make ~rule:"check-parallel-determinism"
                           ~severity:D.Error ~location:D.Circuit
                           (Printf.sprintf
                              "parallel run (%d jobs) diverges from the \
                               sequential report at byte %d (lengths %d \
                               vs %d)"
                              jobs !i (String.length js)
                              (String.length jp)))
                    end));
            if not (Health.is_clean m.Methodology.health) then begin
              let defect, op = Health.worst_defect m.Methodology.health in
              add
                (D.make ~rule:"check-health" ~severity:D.Info
                   ~location:D.Circuit
                   (Printf.sprintf
                      "run recorded %d numerical-health events (worst \
                       defect %.3g%s)"
                      (Health.count m.Methodology.health)
                      defect
                      (if op = "" then "" else " in " ^ op)))
            end))
  end;
  if
    static_clean
    && selected "check-impact-equivalence"
    && impact_edits > 0
    && not (stop ())
  then
    check_impact_equivalence ~config ~circuit ~placement ~edits:impact_edits
      ~seed:impact_seed ~stop add;
  if !interrupted then
    add
      (D.make ~rule:"check-interrupted" ~severity:D.Warning
         ~location:D.Circuit
         (Printf.sprintf
            "verification interrupted: %d paths certified before the \
             cancellation request; unfinished checks were skipped"
            !paths_certified));
  List.iter add (Pdfsan.findings san);
  if Pdfsan.dropped san > 0 then
    add
      (D.make ~rule:"check-health" ~severity:D.Info ~location:D.Circuit
         (Printf.sprintf "%d sanitizer findings dropped beyond the cap"
            (Pdfsan.dropped san)));
  (* [--only] filters the report to the selected ids — except that
     errors from checks that did run always surface: a hidden error
     would turn a failing run into a clean exit code. *)
  let diagnostics =
    List.filter
      (fun d -> selected d.D.rule || d.D.severity = D.Error)
      (List.rev !ds)
  in
  { diagnostics = List.stable_sort D.compare diagnostics;
    nodes_certified = !nodes_certified;
    paths_certified = !paths_certified;
    ops_audited = Pdfsan.ops san;
    health }
