module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Edit = Ssta_circuit.Edit
module Gate = Ssta_tech.Gate
module Layers = Ssta_correlation.Layers
module Graph = Ssta_timing.Graph
module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Config = Ssta_core.Config
module Methodology = Ssta_core.Methodology
module Path_analysis = Ssta_core.Path_analysis
module Health = Ssta_runtime.Health
module Err = Ssta_runtime.Ssta_error
module Rng = Ssta_prob.Rng

type design = {
  circuit : Netlist.t;
  placement : Placement.t;
  drives : float array;
  config : Config.t;
}

let design ?placement ?drives ?(config = Config.default) circuit =
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  let n = Netlist.num_nodes circuit in
  let drives =
    match drives with
    | None -> Array.make n 1.0
    | Some d ->
        if Array.length d <> n then
          invalid_arg
            (Printf.sprintf "Impact.design: %d drives for %d nodes"
               (Array.length d) n);
        Array.iter
          (fun x ->
            if not (Float.is_finite x && x > 0.0) then
              invalid_arg "Impact.design: drives must be finite and positive")
          d;
        Array.copy d
  in
  { circuit; placement; drives; config }

let graph_of d = Graph.with_drives d.circuit d.drives
let sta_of d = Sta.of_graph (graph_of d)

(* --- resolution ------------------------------------------------------- *)

type change =
  | Gate_resize of { node : int; drive : float; old_drive : float }
  | Gate_retype of { node : int; kind : Gate.kind; old_kind : Gate.kind }
  | Cell_move of {
      node : int;
      x : float;
      y : float;
      old_x : float;
      old_y : float;
    }
  | Config_set of {
      param : string;
      value : float;
      effect : Config.param_effect;
    }

exception Fail of Err.t

let fail ~line fmt =
  Printf.ksprintf
    (fun m ->
      raise (Fail (Err.structural ~subject:"edit" (Printf.sprintf "line %d: %s" line m))))
    fmt

let apply_one d change =
  match change with
  | Gate_resize { node; drive; _ } ->
      let drives = Array.copy d.drives in
      drives.(node) <- drive;
      { d with drives }
  | Gate_retype { node; kind; _ } ->
      { d with circuit = Netlist.with_gate_kind d.circuit node kind }
  | Cell_move { node; x; y; _ } ->
      let coords = Array.copy d.placement.Placement.coords in
      coords.(node) <- (x, y);
      { d with placement = { d.placement with Placement.coords } }
  | Config_set { param; value; _ } -> (
      match Config.set_param d.config param value with
      | Ok (config, _) -> { d with config }
      | Error _ ->
          (* resolve validated the delta against the same config chain *)
          assert false)

let apply d changes = List.fold_left apply_one d changes

let resolve_gate d ~line name =
  match Netlist.find_node d.circuit name with
  | None -> fail ~line "unknown gate %S" name
  | Some id when Netlist.is_input d.circuit id ->
      fail ~line "%S is a primary input, not a gate" name
  | Some id -> id

let resolve_one d { Edit.op; line } =
  match op with
  | Edit.Resize { gate; drive } ->
      let node = resolve_gate d ~line gate in
      if not (Float.is_finite drive && drive > 0.0) then
        fail ~line "drive must be positive, got %g" drive;
      Gate_resize { node; drive; old_drive = d.drives.(node) }
  | Edit.Retype { gate; kind } ->
      let node = resolve_gate d ~line gate in
      let g = Netlist.gate_of d.circuit node in
      let arity = Array.length g.Netlist.fanins in
      let kind_name = String.uppercase_ascii kind in
      (match Gate.of_name kind_name arity with
      | None ->
          fail ~line "unknown gate kind %S for a %d-input gate" kind arity
      | Some k -> Gate_retype { node; kind = k; old_kind = g.Netlist.kind })
  | Edit.Move { gate; x; y } ->
      let node = resolve_gate d ~line gate in
      let w = d.placement.Placement.die_width
      and h = d.placement.Placement.die_height in
      if
        (not (Float.is_finite x && Float.is_finite y))
        || x < 0.0 || y < 0.0 || x > w || y > h
      then
        fail ~line
          "move (%g, %g) lands outside the die (0, 0)..(%g, %g) — in no \
           quad-tree leaf"
          x y w h;
      let old_x, old_y = d.placement.Placement.coords.(node) in
      Cell_move { node; x; y; old_x; old_y }
  | Edit.Set { param; value } -> (
      match Config.set_param d.config param value with
      | Ok (_, effect) -> Config_set { param; value; effect }
      | Error msg -> fail ~line "%s" msg)

(* Sequential resolution: each edit is bound against the design after
   the previous ones, so scripts compose (a second move of the same
   gate records the intermediate position as its old one). *)
let resolve d edits =
  try
    let changes, _ =
      List.fold_left
        (fun (acc, cur) e ->
          let c = resolve_one cur e in
          (c :: acc, apply_one cur c))
        ([], d) edits
    in
    Ok (List.rev changes)
  with Fail e -> Error e

(* --- the cone --------------------------------------------------------- *)

type cone = {
  dirty : bool array;
  forward : bool array;
  backward : bool array;
  dirty_count : int;
  cone_nodes : int;
  affected_endpoints : int list;
  full : bool;
}

module Reach = Dataflow.Make (struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
  let widen ~prev:_ ~next = next
  let pp = Format.pp_print_bool
end)

(* A gate's delay depends on its output load, which sums its consumers'
   input capacitances at their kinds and drives — so a resize/retype of
   [g] perturbs [g] and every fan-in of [g].  A move perturbs the intra
   variance split of the moved gate and, conservatively, of every gate
   in the deepest quad-tree leaf it leaves or enters (the Eq. (14)
   soundness case; see the interface preamble). *)
let dirty_of d changes =
  let n = Netlist.num_nodes d.circuit in
  let dirty = Array.make n false in
  let full = ref false in
  let mark_leaf_residents ~p_old ~p_new layers level =
    Array.iter
      (fun (g : Netlist.gate) ->
        let x, y = d.placement.Placement.coords.(g.Netlist.id) in
        if Float.is_finite x && Float.is_finite y then begin
          let p = Layers.partition_of layers ~level ~x ~y in
          if p = p_old || p = p_new then dirty.(g.Netlist.id) <- true
        end)
      d.circuit.Netlist.gates
  in
  List.iter
    (fun change ->
      match change with
      | Gate_resize { node; _ } | Gate_retype { node; _ } ->
          dirty.(node) <- true;
          Array.iter
            (fun f -> dirty.(f) <- true)
            (Netlist.gate_of d.circuit node).Netlist.fanins
      | Cell_move { node; x; y; old_x; old_y } ->
          dirty.(node) <- true;
          let layers =
            Layers.create ~quad_levels:d.config.Config.quad_levels
              ~random_layer:false
              ~die_width:d.placement.Placement.die_width
              ~die_height:d.placement.Placement.die_height ()
          in
          let level = d.config.Config.quad_levels - 1 in
          let p_old = Layers.partition_of layers ~level ~x:old_x ~y:old_y in
          let p_new = Layers.partition_of layers ~level ~x ~y in
          mark_leaf_residents ~p_old ~p_new layers level
      | Config_set { effect = Config.Enumeration_only; _ } -> ()
      | Config_set { effect = Config.Analysis | Config.Tables; _ } ->
          full := true)
    changes;
  (dirty, !full)

let cone_of d changes =
  let dirty, full = dirty_of d changes in
  let forward, backward =
    if full then begin
      let n = Array.length dirty in
      (Array.make n true, Array.make n true)
    end
    else
      let fixpoint direction =
        (Reach.fixpoint ~direction d.circuit
           ~init:(fun id -> dirty.(id))
           ~transfer:(fun ~node:_ v -> v))
          .Reach.values
      in
      (fixpoint Dataflow.Forward, fixpoint Dataflow.Backward)
  in
  let dirty_count =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 dirty
  in
  let cone_nodes = ref 0 in
  Array.iteri
    (fun i f -> if f || backward.(i) then incr cone_nodes)
    forward;
  let affected_endpoints =
    Array.to_list
      (Array.of_seq
         (Seq.filter (fun o -> forward.(o))
            (Array.to_seq d.circuit.Netlist.outputs)))
  in
  { dirty;
    forward;
    backward;
    dirty_count;
    cone_nodes = !cone_nodes;
    affected_endpoints;
    full }

(* --- incremental state ------------------------------------------------ *)

type state = {
  mutable design : design;
  mutable warm : Path_analysis.warm;
  cache : (int array * float, Path_analysis.t * Health.t) Hashtbl.t;
  lifetime : Health.t;
}

let design_of s = s.design
let cache_size s = Hashtbl.length s.cache
let ledger s = s.lifetime

let fork s =
  { design = s.design;
    warm = s.warm;
    cache = Hashtbl.copy s.cache;
    lifetime = s.lifetime }

let screen_of config =
  if config.Config.affine_prune then Some (Affine.methodology_screen config)
  else None

let run_design ?pool ?reuse ?record d ~warm =
  Methodology.analyze ~config:d.config ~placement:d.placement ?pool
    ?screen:(screen_of d.config) ~sta:(sta_of d) ~warm ?reuse ?record
    d.circuit

let record_into cache p pa ledger =
  Hashtbl.replace cache (p.Paths.nodes, p.Paths.delay) (pa, ledger)

let init ?pool ?(ledger = Health.create ()) d =
  match
    Err.protect ~context:"Impact.init" (fun () -> Path_analysis.warm d.config)
  with
  | Error e -> Error e
  | Ok warm -> (
      let cache = Hashtbl.create 1024 in
      match
        run_design ?pool ~record:(record_into cache) d ~warm
      with
      | Error e -> Error e
      | Ok report ->
          Ok ({ design = d; warm; cache; lifetime = ledger }, report))

type outcome = {
  report : Methodology.t;
  cone : cone;
  invalidated : int;
  reused : int;
  reanalyzed : int;
}

let reanalyze ?pool s edits =
  match resolve s.design edits with
  | Error e -> Error e
  | Ok changes -> (
      let cone = cone_of s.design changes in
      let next = apply s.design changes in
      (* Invalidate exactly the cached paths the cone touches — or
         everything on an analysis/table-level parameter delta. *)
      let stale =
        if cone.full then Hashtbl.fold (fun k _ acc -> k :: acc) s.cache []
        else
          Hashtbl.fold
            (fun ((nodes, _) as k) _ acc ->
              if Array.exists (fun n -> cone.dirty.(n)) nodes then k :: acc
              else acc)
            s.cache []
      in
      let invalidated = List.length stale in
      (* Work on a private cache so a failed run leaves the state
         untouched. *)
      let cache = Hashtbl.copy s.cache in
      List.iter (Hashtbl.remove cache) stale;
      let warm_result =
        if Path_analysis.warm_compatible s.warm next.config then Ok s.warm
        else
          Err.protect ~context:"Impact.reanalyze" (fun () ->
              Path_analysis.warm next.config)
      in
      match warm_result with
      | Error e -> Error e
      | Ok warm -> (
          let reused = ref 0 and reanalyzed = ref 0 in
          let reuse p =
            match Hashtbl.find_opt cache (p.Paths.nodes, p.Paths.delay) with
            | Some _ as hit ->
                incr reused;
                hit
            | None -> None
          in
          let record p pa ledger =
            incr reanalyzed;
            record_into cache p pa ledger
          in
          match run_design ?pool ~reuse ~record next ~warm with
          | Error e -> Error e
          | Ok report ->
              s.design <- next;
              s.warm <- warm;
              Hashtbl.reset s.cache;
              Hashtbl.iter (Hashtbl.add s.cache) cache;
              Health.counter_add s.lifetime "impact-edits"
                (List.length changes);
              Health.counter_add s.lifetime "impact-cone-nodes"
                cone.cone_nodes;
              Health.counter_add s.lifetime "impact-cache-invalidated"
                invalidated;
              Health.counter_add s.lifetime "impact-paths-reused" !reused;
              Health.counter_add s.lifetime "impact-paths-reanalyzed"
                !reanalyzed;
              Ok
                { report;
                  cone;
                  invalidated;
                  reused = !reused;
                  reanalyzed = !reanalyzed }))

let what_if ?pool s edits = reanalyze ?pool (fork s) edits

let scratch ?pool d =
  match
    Err.protect ~context:"Impact.scratch" (fun () -> Path_analysis.warm d.config)
  with
  | Error e -> Error e
  | Ok warm -> run_design ?pool d ~warm

(* --- the random-edit corpus ------------------------------------------ *)

let sibling_kind = function
  | Gate.Inv -> Gate.Buf
  | Gate.Buf -> Gate.Inv
  | Gate.Nand n -> Gate.Nor n
  | Gate.Nor n -> Gate.Nand n
  | Gate.And n -> Gate.Or n
  | Gate.Or n -> Gate.And n
  | Gate.Xor2 -> Gate.Xnor2
  | Gate.Xnor2 -> Gate.Xor2

let random_edits ~rng ~count d =
  List.init count (fun i ->
      let node =
        d.circuit.Netlist.num_inputs
        + Rng.int rng (Netlist.num_gates d.circuit)
      in
      let gate = Netlist.node_name d.circuit node in
      let op =
        match Rng.int rng 3 with
        | 0 ->
            Edit.Resize { gate; drive = Rng.uniform rng ~lo:0.6 ~hi:1.6 }
        | 1 ->
            Edit.Retype
              { gate;
                kind =
                  Gate.name
                    (sibling_kind (Netlist.gate_of d.circuit node).Netlist.kind)
              }
        | _ ->
            Edit.Move
              { gate;
                x =
                  Rng.uniform rng ~lo:0.0
                    ~hi:d.placement.Placement.die_width;
                y =
                  Rng.uniform rng ~lo:0.0
                    ~hi:d.placement.Placement.die_height }
      in
      { Edit.op; line = i + 1 })
