(** Interval abstract domain over the reals.

    The carrier is the flat lattice of closed intervals [[lo, hi]] plus
    [Bottom] (the empty set).  Two join structures are exposed because
    the verifier uses the same carrier under two different orders:

    - the {e containment} order ([subset] / [hull] / [widen]) — the
      classic interval domain of abstract interpretation, used wherever
      an interval stands for "the set of values this quantity can
      take"; and
    - the {e max-plus} order ([sup] / [widen_sup]) — componentwise
      [max], used by the arrival-time analysis where joining two path
      prefixes at a node takes the worst case of each bound
      independently ([arrival = max] over fan-ins, then [+] the gate
      delay).

    Both are join-semilattices with [Bottom] as the least element, so
    either can instantiate the dataflow framework. *)

type t = Bottom | Range of { lo : float; hi : float }

val bottom : t
val top : t
(** [[-inf, +inf]]. *)

val make : lo:float -> hi:float -> t
(** Raises [Invalid_argument] when [hi < lo] or either bound is NaN. *)

val of_pair : float * float -> t
val singleton : float -> t
val zero : t
(** [singleton 0.0] — the arrival time of a primary input. *)

val is_bottom : t -> bool
val equal : t -> t -> bool

val range : t -> (float * float) option
(** [None] for [Bottom]. *)

val hull : t -> t -> t
(** Least interval containing both — the containment-order join. *)

val sup : t -> t -> t
(** Componentwise max — the max-plus join.  [Bottom] is the identity. *)

val add : t -> t -> t
(** Interval sum; [Bottom] is absorbing. *)

val widen : prev:t -> next:t -> t
(** Containment-order widening: a bound that moved outward jumps to the
    corresponding infinity. *)

val widen_sup : prev:t -> next:t -> t
(** Max-plus widening: a component that grew jumps to [+inf]. *)

val contains : ?slack:float -> t -> float -> bool
(** Membership, with the interval widened by [slack] (default 0) on both
    sides.  [Bottom] contains nothing. *)

val subset : ?slack:float -> t -> of_:t -> bool
(** [subset a ~of_:b]: is [a] contained in [b] widened by [slack]?
    [Bottom] is a subset of everything. *)

val width : t -> float
(** [hi - lo]; 0 for [Bottom]. *)

val magnitude : t -> float
(** [max |lo| |hi|]; 0 for [Bottom] — the scale used for relative
    tolerances. *)

val pp : Format.formatter -> t -> unit
