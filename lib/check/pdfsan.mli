(** The PDF sanitizer ("pdfsan").

    A session consumes the {!Ssta_prob.Pdf.trace_event} stream emitted
    by the instrumented grid operations and audits every event against
    four invariants:

    - {b density}: no NaN, infinite or negative density entries;
    - {b mass conservation}: the operation's output integrates to 1 and
      its pre-normalization input mass was 1 (within [tol_mass]) — a
      drift means [Pdf.make]'s normalization silently papered over a
      mass leak;
    - {b support containment}: the output's support lies inside the
      shadow interval computed by interval arithmetic on the operation's
      inputs (within one grid step plus rounding);
    - {b monotone CDF}: the CDF is 0 at the left support edge, 1 at the
      right, and non-decreasing across probe points;

    plus a {b clamping} watchdog: mass deposited strictly outside an
    accumulator grid (then clamped to a boundary cell) beyond
    [tol_clamped] indicates a range-scan failure.

    Violations become diagnostics (capped, with an overflow counter) and
    are mirrored into a {!Ssta_runtime.Health} ledger so existing
    reporting surfaces them too. *)

type config = {
  tol_mass : float;  (** mass drift tolerance (default 1e-6) *)
  tol_clamped : float;  (** clamped-mass tolerance (default 1e-9) *)
  max_findings : int;  (** diagnostics kept verbatim (default 64) *)
}

val default_config : config

type t

val checks : (string * string) list
(** Check ids this module can emit, with one-line descriptions. *)

val create : ?config:config -> ?health:Ssta_runtime.Health.t -> unit -> t
(** A fresh session (fresh ledger when [health] is omitted).  The
    session is passive until {!install}ed. *)

val install : t -> unit
(** Route the process-wide {!Ssta_prob.Pdf} trace hook into this
    session (replacing any previous hook). *)

val uninstall : unit -> unit
(** Remove the process-wide hook. *)

val audit : t -> Ssta_prob.Pdf.trace_event -> unit
(** Audit one event directly (what {!install} wires up; also the
    fault-injection entry point). *)

val ops : t -> int
(** Events audited so far. *)

val findings : t -> Ssta_lint.Diagnostic.t list
(** Violations in arrival order (at most [max_findings]). *)

val dropped : t -> int
(** Findings discarded beyond the cap. *)

val health : t -> Ssta_runtime.Health.t

val with_session :
  ?config:config -> (unit -> 'a) -> 'a * t
(** [with_session f] installs a fresh session around [f ()],
    uninstalling even on exceptions. *)
