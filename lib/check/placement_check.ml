module D = Ssta_lint.Diagnostic
module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Layers = Ssta_correlation.Layers
module Config = Ssta_core.Config

let checks =
  [ ("check-place-bounds",
     "every placed node has finite coordinates inside the die");
    ("check-place-partition",
     "each gate falls in exactly one partition rectangle per layer, the \
      one partition_of reports");
    ("check-place-nesting",
     "a gate's partition at level u is a child of its partition at u-1");
    ("check-place-sibling",
     "each level's sibling partitions tile the die, four children per \
      parent") ]

let err ?hint ~rule ~location msg = D.make ?hint ~rule ~severity:D.Error ~location msg

(* Row-major rectangle of partition [p] on a [2^level] grid.  Cells are
   half-open except at the die's right/top edge, so every in-die point
   belongs to exactly one rectangle. *)
let rect ~die_w ~die_h ~level p =
  let cells = 1 lsl level in
  let cw = die_w /. float_of_int cells and ch = die_h /. float_of_int cells in
  let col = p mod cells and row = p / cells in
  ( float_of_int col *. cw,
    float_of_int row *. ch,
    float_of_int (col + 1) *. cw,
    float_of_int (row + 1) *. ch )

let in_rect ~die_w ~die_h (x0, y0, x1, y1) x y =
  (* Half-open at the right/top, except that the die's own edge closes
     the last cell (an in-die point on the edge must belong somewhere;
     the rounding guard covers cells*(die/cells) <> die). *)
  let below_hi edge hi v =
    if hi >= edge *. (1.0 -. 1e-12) then v <= edge else v < hi
  in
  x >= x0 && y >= y0 && below_hi die_w x1 x && below_hi die_h y1 y

let check (config : Config.t) (c : Netlist.t) (pl : Placement.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let n = Netlist.num_nodes c in
  let die_w = pl.Placement.die_width and die_h = pl.Placement.die_height in
  if
    (not (Float.is_finite die_w && Float.is_finite die_h))
    || die_w <= 0.0 || die_h <= 0.0
  then begin
    add
      (err ~rule:"check-place-bounds" ~location:D.Circuit
         (Printf.sprintf "die %g x %g um is not a positive finite rectangle"
            die_w die_h));
    List.rev !ds
  end
  else if Array.length pl.Placement.coords <> n then begin
    add
      (err ~rule:"check-place-bounds" ~location:D.Circuit
         (Printf.sprintf "placement covers %d nodes but the netlist has %d"
            (Array.length pl.Placement.coords) n));
    List.rev !ds
  end
  else begin
    let layers = Config.layers_for config pl in
    let quad_levels = layers.Layers.quad_levels in
    (* Level-wise tiling: four children per parent, areas summing to the
       die.  This is per level, not per gate. *)
    for level = 1 to quad_levels - 1 do
      let parts = Layers.partitions_at layers level in
      if parts <> 4 * Layers.partitions_at layers (level - 1) then
        add
          (err ~rule:"check-place-sibling" ~location:D.Circuit
             (Printf.sprintf
                "level %d has %d partitions, expected 4x the %d of level %d"
                level parts
                (Layers.partitions_at layers (level - 1))
                (level - 1)));
      let area = ref 0.0 in
      for p = 0 to parts - 1 do
        let x0, y0, x1, y1 = rect ~die_w ~die_h ~level p in
        area := !area +. ((x1 -. x0) *. (y1 -. y0))
      done;
      let die_area = die_w *. die_h in
      if Float.abs (!area -. die_area) > 1e-9 *. die_area then
        add
          (err ~rule:"check-place-sibling" ~location:D.Circuit
             (Printf.sprintf
                "level %d partition rectangles tile %.9g um^2 of a %.9g \
                 um^2 die"
                level !area die_area))
    done;
    for id = 0 to n - 1 do
      let x, y = Placement.coord pl id in
      let in_die =
        Float.is_finite x && Float.is_finite y
        && x >= 0.0 && x <= die_w && y >= 0.0 && y <= die_h
      in
      if not in_die then
        add
          (err ~rule:"check-place-bounds"
             ~location:(D.Place { id; x; y })
             ~hint:"partition_of clamps out-of-die points, silently \
                    distorting spatial correlation"
             (Printf.sprintf "node lies outside the %g x %g um die" die_w
                die_h));
      (* Partition membership is checked for gates only: inputs carry no
         delay and no correlation coefficients. *)
      if in_die && not (Netlist.is_input c id) then begin
        let prev_partition = ref 0 in
        for level = 1 to quad_levels - 1 do
          let reported = Layers.partition_of layers ~level ~x ~y in
          (* Independent geometric verification: scan every rectangle of
             the level and demand exactly one contains the point — the
             reported one. *)
          let containing = ref [] in
          let parts = Layers.partitions_at layers level in
          for p = 0 to parts - 1 do
            if in_rect ~die_w ~die_h (rect ~die_w ~die_h ~level p) x y then
              containing := p :: !containing
          done;
          (match !containing with
          | [ p ] when p = reported -> ()
          | [ p ] ->
              add
                (err ~rule:"check-place-partition"
                   ~location:(D.Place { id; x; y })
                   (Printf.sprintf
                      "level %d: partition_of reports %d but the point \
                       lies in rectangle %d"
                      level reported p))
          | others ->
              add
                (err ~rule:"check-place-partition"
                   ~location:(D.Place { id; x; y })
                   (Printf.sprintf
                      "level %d: point lies in %d partition rectangles, \
                       expected exactly 1"
                      level (List.length others))));
          (* Nesting: the parent of this level's cell is last level's
             cell. *)
          let cells = 1 lsl level in
          let col = reported mod cells and row = reported / cells in
          let parent = ((row / 2) * (cells / 2)) + (col / 2) in
          if level > 1 && parent <> !prev_partition then
            add
              (err ~rule:"check-place-nesting"
                 ~location:(D.Place { id; x; y })
                 (Printf.sprintf
                    "level %d partition %d nests under %d, but the gate \
                     maps to %d at level %d"
                    level reported parent !prev_partition (level - 1)));
          prev_partition := reported
        done
      end
    done;
    List.rev !ds
  end
