(** The verification driver: whole-program checks over one placed
    circuit.

    Phases, mirroring the lint engine's layering:

    + {b static} — variance-budget accounting ({!Variance_check}) and
      placement/quad-tree consistency ({!Placement_check}).  Errors here
      void the dynamic phase (certifying a run against a broken
      configuration proves nothing).
    + {b bounds} — interval arrival-time analysis
      ({!Arrival_bounds}): certify the deterministic labels, the
      critical delay and the forward/backward duality.
    + {b bounds} — affine arrival-time analysis ({!Affine}): certify
      every path's Eq. (14) sensitivity vector and variance split
      against the zonotope bounds, Monte-Carlo samples against the
      truncation envelope, and the static path screener's proof
      obligation (pruned enumeration byte-equal to the unpruned one).
    + {b dynamic} — run {!Ssta_core.Methodology.analyze} (optionally
      under the PDF sanitizer, {!Pdfsan}) and certify every analyzed
      path: nominal delay, PDF supports, quantiles and mean against the
      static intervals; per-layer variance accounting per path.

    All findings are {!Ssta_lint.Diagnostic} values; severity and exit
    conventions follow the lint engine
    ({!Ssta_lint.Engine.exit_code}). *)

(** Seeded violations for tests and CI: each corrupts one layer of the
    pipeline and must be caught by a distinct check id. *)
type injection =
  | Bad_budget
      (** budget with the wrong layer count -> [check-var-budget] *)
  | Bad_placement
      (** a gate moved outside the die -> [check-place-bounds] *)
  | Corrupt_pdf
      (** a PDF with non-finite density pushed through the sanitizer ->
          [check-pdfsan-density] *)

type input = {
  circuit : Ssta_circuit.Netlist.t;
  placement : Ssta_circuit.Placement.t;
  config : Ssta_core.Config.t;
  pdfsan : bool;  (** audit every PDF operation of the run *)
  path_limit : int;
      (** certify at most this many ranked paths (0 = all); a capped
          certification is reported as an info diagnostic *)
  par_jobs : int option;
      (** when [Some jobs], rerun the flow on a [jobs]-worker pool and
          demand a byte-identical deterministic report
          ([check-parallel-determinism]) *)
  inject : injection option;
  only : string list;
      (** run only these check ids ([[]] = all).  The static phase
          still executes (its errors gate the dynamic phase and always
          surface), but expensive phases whose ids are all unselected —
          the methodology run itself, the sanitizer, per-path
          certification loops, the parallel rerun, the affine passes —
          are skipped, and the report is filtered to the selected ids
          plus any error found along the way. *)
  impact_edits : int;
      (** seeded random edits for the incremental-equivalence phase
          ([check-impact-equivalence]): each edit is applied to a warm
          incremental image ({!Impact}) and the spliced report is
          byte-compared against a from-scratch run; [0] skips the
          phase *)
  impact_seed : int;  (** seed of the random-edit corpus *)
  should_stop : unit -> bool;
      (** cooperative cancellation hook (a signal latch, a server
          shutdown flag), polled between phases and between per-path
          certifications.  Once it answers true the verifier finishes
          the current item, skips the remaining work, and reports a
          [check-interrupted] warning — the diagnostics emitted up to
          that point still describe fully certified items. *)
}

val input :
  ?config:Ssta_core.Config.t ->
  ?placement:Ssta_circuit.Placement.t ->
  ?pdfsan:bool ->
  ?path_limit:int ->
  ?par_jobs:int ->
  ?inject:injection ->
  ?only:string list ->
  ?impact_edits:int ->
  ?impact_seed:int ->
  ?should_stop:(unit -> bool) ->
  Ssta_circuit.Netlist.t ->
  input
(** Defaults: {!Ssta_core.Config.default} configuration, computed
    placement, pdfsan on, [path_limit] 64, parallel certification off,
    [only] empty (every check), one impact edit at seed 7,
    [should_stop] never. *)

type report = {
  diagnostics : Ssta_lint.Diagnostic.t list;
      (** sorted with {!Ssta_lint.Diagnostic.compare} *)
  nodes_certified : int;  (** nodes with certified arrival labels *)
  paths_certified : int;  (** analyzed paths certified against bounds *)
  ops_audited : int;  (** PDF operations audited by the sanitizer *)
  health : Ssta_runtime.Health.t;
      (** merged ledger: the run's own plus the sanitizer's *)
}

val run : input -> report

val all_checks : (string * string) list
(** Every check id the verifier can emit with its one-line description,
    sorted by id. *)
