(** Affine arrival forms — Eq. (14) as a zonotope abstract domain.

    The paper's variance decomposition (Eq. 14) writes a path delay as a
    deterministic center, one first-order coefficient per inter-die RV,
    and an intra-die residue.  That is exactly the shape of an affine
    form (a zonotope in the five-dimensional inter-die parameter space),
    so the decomposition can be run as a static analysis: propagate one
    affine form per node through the timing DAG with the monotone
    {!Dataflow} solver and every node gets a certified sensitivity
    vector plus a conservative residual — tight enough to rank paths,
    unlike the scalar intervals of {!Arrival_bounds}.

    A form abstracts a delay quantity [D(p)] over the truncated
    parameter box as

    {v center + sum_i c_i * x_i  (+ intra, + residual) v}

    where [x_i] is the standardized inter-die deviation of RV [i]
    (so [|x_i| <= trunc]), [c_i] is an interval of admissible
    coefficients (a singleton for a single gate; joins widen it),
    [intra_sigma] bounds the standard deviation of the concentrated
    intra-die part of any represented path (per-gate sigmas add along a
    path before squaring — Eq. 14 — so the sum of per-gate bounds is a
    path bound by the triangle inequality), and [residual] is an
    interval absorbing the nonlinearity of the Elmore delay model
    beyond the tangent-plane box.

    Soundness never depends on Gaussianity: [max] (= [join]) is a
    Clark-style maximum bounded by the componentwise interval hull, so
    the concretization of a join contains the concretizations of both
    arguments whatever the distributions are.  The price is the usual
    zonotope-join coarseness; the per-path helpers ({!path_form}) avoid
    it entirely by folding [add] along an explicit path. *)

type form = {
  center : float;  (** deterministic (nominal) component, seconds *)
  coeffs : Interval.t array;
      (** per-RV first-order coefficient, in {!Ssta_tech.Params.all_rvs}
          order, already scaled by [sigma_rv * sqrt w0] — the
          coefficient multiplies the {e standardized} inter-die
          deviation *)
  intra_sigma : float;
      (** upper bound on the intra-die standard deviation of any path
          represented by this form, seconds *)
  residual : Interval.t;
      (** nonlinearity support around 0: what the concrete delay range
          adds beyond the first-order box at the analysis truncation *)
}

type t = Bottom | Form of form
(** [Bottom] is the empty set (unreachable / not yet computed). *)

(** {1 Transfer functions} *)

val const : float -> t
(** Deterministic value: zero coefficients, zero residue. *)

val add : t -> t -> t
(** Sum of two forms: centers, coefficients, intra bounds and residuals
    all add ([Bottom] absorbing).  Exact for the linear part. *)

val scale : float -> t -> t
(** Multiply by a constant (negative constants flip coefficient
    intervals; [intra_sigma] scales by the magnitude). *)

val max : t -> t -> t
(** Clark-style maximum, hulled: the center takes the max, every
    coefficient interval takes the componentwise hull, [intra_sigma]
    the max, residuals the hull.  Sound for any distribution of the
    underlying RVs; also the lattice join ([Bottom] is the identity). *)

val join : t -> t -> t
(** Alias of {!max} — arrival joins at a node {e are} statistical
    maxima. *)

val equal : t -> t -> bool

val widen : prev:t -> next:t -> t
(** Components that grew jump to infinity (the DAG fixpoint converges
    without ever widening; this exists to satisfy the solver
    contract). *)

val pp : Format.formatter -> t -> unit

val concretize : trunc:float -> t -> Interval.t
(** Concrete delay range at truncation [trunc] (in sigmas):
    [center +- trunc * (sum |coeffs| + intra_sigma)] plus the
    residual.  [Bottom] concretizes to [Interval.bottom]. *)

val sigma_upper : t -> float
(** Upper bound on the standard deviation of any represented path:
    [sqrt (sum_i mag(c_i)^2 + intra_sigma^2)] — the Eq. (14) variance
    with every coefficient at its interval magnitude. *)

(** {1 Whole-circuit analysis} *)

type analysis = {
  gate : t array;  (** per-gate delay form; [const 0] for inputs *)
  arrival : t array;  (** forward fixpoint: input-to-node, inclusive *)
  suffix : t array;
      (** backward fixpoint: node-to-output, {e exclusive} of the
          node's own gate *)
  circuit : t;  (** join of the arrival forms at the primary outputs *)
  trunc : float;  (** truncation the gate residuals were certified at *)
  forward_stats : string;  (** solver convergence summary *)
  backward_stats : string;
}

val compute :
  Ssta_core.Config.t -> Ssta_timing.Graph.t -> (analysis, string) result
(** One forward and one backward pass of the {!Dataflow} solver.  Each
    gate's form takes its center from the graph's nominal delay, its
    coefficients from the analytic derivatives
    ({!Ssta_tech.Derivatives.gradient}) scaled by [sigma * sqrt w0],
    its intra bound from the orthogonal complement of the inter-die
    split, and its residual from the exact Elmore corner bounds
    ({!Ssta_tech.Elmore.delay_bounds}) — so the gate concretization
    always contains the certified interval of {!Arrival_bounds}.
    [Error] when a truncated corner leaves the delay model's physical
    domain (same failure mode as {!Arrival_bounds.compute}). *)

val path_form : analysis -> Ssta_timing.Paths.path -> t
(** Join-free fold of [add] over the gate forms of an explicit path —
    the tight per-path abstraction used by the certification checks. *)

val through : analysis -> int -> t
(** [add arrival.(u) suffix.(u)]: the best complete path through node
    [u], as a form. *)

(** {1 Static path screening} *)

type screen = {
  pruned : bool array;  (** per node: provably not near-critical *)
  nodes_visited : int;  (** total nodes examined (= graph size) *)
  nodes_pruned : int;
  threshold : float;  (** the enumeration threshold screened against *)
}

val screen : analysis -> Ssta_timing.Sta.t -> slack:float -> screen
(** Screen every node against the enumeration threshold of
    [Paths.enumerate g ~slack]: node [u] is pruned when
    [labels.(u) + suffix_center.(u)] — the nominal delay of the best
    complete path through [u] — falls short of the threshold by more
    than one tie tick.  Every frontier push of the enumerator carries a
    bound [<= labels.(u) + suffix_center.(u)] up to ulp-level summation
    drift (orders of magnitude below the tick), so feeding
    {!prune_hook} to [enumerate ?prune] provably changes no push: the
    enumeration record stays byte-identical.  The decision is a pure
    function of the graph, labels and slack — independent of worker
    count, so [--jobs] determinism is preserved. *)

val prune_hook : screen -> int -> bool
(** The [?prune] callback for {!Ssta_timing.Paths.enumerate} /
    {!Ssta_timing.Sta.near_critical}. *)

val screen_counters : screen -> (string * int) list
(** Health counters, sorted by name:
    [affine-screen-nodes-pruned], [affine-screen-nodes-visited]. *)

val methodology_screen :
  Ssta_core.Config.t ->
  sta:Ssta_timing.Sta.t ->
  slack:float ->
  (int -> bool) * (string * int) list
(** Packaged screen for [Methodology.analyze ~screen]: computes the
    affine analysis on the methodology's own timing graph and returns
    the prune hook plus its counters; degrades to a no-op hook (and no
    counters) if the affine analysis fails. *)

(** {1 Per-node criticality} *)

type crit = {
  node : int;
  through_center : float;
      (** nominal delay of the best path through the node, seconds *)
  slack : float;  (** critical delay minus [through_center] (clamped at 0) *)
  sigma : float;  (** {!sigma_upper} of the through form *)
  z : float;  (** [slack / sigma]; [infinity] when sigma is 0 *)
  prob : float;
      (** Gaussian-model bound on the probability that variation closes
          the slack: [1 - Phi(z)].  The {e ranking} (by [z]) is
          shape-free; the probability column assumes the paper's
          Gaussian RVs. *)
}

val criticality : analysis -> Ssta_timing.Sta.t -> crit list
(** One entry per gate (inputs and nodes on no complete path are
    skipped), sorted most-critical first: ascending [z], node id as the
    tie break.  Nodes on the critical path have [slack = 0], [z = 0],
    [prob = 0.5] — the arrival-tightness convention. *)

val pp_criticality :
  ?top:int -> Ssta_timing.Graph.t -> Format.formatter -> crit list -> unit
(** Text report of the [top] (default 20) most critical gates. *)

val criticality_json : Ssta_timing.Graph.t -> crit list -> string
(** The full ranking as a JSON document (stable field order). *)
