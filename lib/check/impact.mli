(** Dependence-cone change-impact analysis with certified incremental
    re-analysis.

    An ECO-style edit — resize or retype a gate, move a cell, change a
    methodology parameter — perturbs only the dependence cone of the
    touched nodes.  This module computes that cone {e statically} with
    the monotone {!Dataflow} framework and uses it to re-analyze a
    design incrementally: per-path statistical analyses (the O(Q³)
    dominant cost) are cached across edits and reused for every path
    outside the cone, and the spliced report is {b byte-identical} to a
    from-scratch run — the contract certified by the
    [check-impact-equivalence] check and fuzzed by the random-edit
    corpus ([ssta fault --edits]).

    {2 Dirty sets and the cone}

    A resize/retype of gate [g] dirties [g] {e and its fan-ins}: under
    the drive-aware load model a gate's output load is the sum of its
    consumers' input capacitances at their drives, so changing [g]
    changes the delay of every gate feeding it.  A move of [g] dirties
    [g] plus every gate resident in the deepest quad-tree leaf [g]
    leaves or enters — the Eq. (14) soundness case: a path's intra-die
    variance split depends on which quad-tree partitions its gates
    occupy, so cell-membership churn in a shared leaf is conservatively
    treated as impact on every co-resident (with a fixed die outline
    the co-residents' own partitions cannot actually change, which
    makes the widening a strict superset — certified harmless by the
    byte-identity check).  The forward cone (dirty nodes to affected
    endpoints) and backward cone (to affected path prefixes) are the
    two reachability fixpoints of a boolean domain over the DAG.

    A path is {e reusable} iff it contains no dirty node; the cone is
    the union slice reported to users.  Parameter deltas follow
    {!Ssta_core.Config.param_effect}: enumeration-only deltas keep
    every cached path, analysis deltas invalidate the whole cache,
    table deltas additionally rebuild the warm state.

    {2 Load model}

    Designs here always use the drive-aware graph
    ({!Ssta_timing.Graph.with_drives}, all drives 1.0 until edited) so
    a resize stays a local perturbation.  The from-scratch comparand
    {!scratch} uses the same model — byte-identity is meaningful. *)

module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Config = Ssta_core.Config
module Methodology = Ssta_core.Methodology
module Path_analysis = Ssta_core.Path_analysis
module Health = Ssta_runtime.Health
module Err = Ssta_runtime.Ssta_error

(** A self-contained analyzable design: netlist, placement, per-node
    drive strengths and methodology configuration. *)
type design = private {
  circuit : Netlist.t;
  placement : Placement.t;
  drives : float array;  (** per node id; entries for inputs unused *)
  config : Config.t;
}

val design :
  ?placement:Placement.t ->
  ?drives:float array ->
  ?config:Config.t ->
  Netlist.t ->
  design
(** Defaults: computed placement ({!Placement.place}), all drives 1.0,
    {!Config.default}.  Raises [Invalid_argument] on a drives array of
    the wrong length or with non-finite/non-positive entries. *)

(** A resolved edit: node names bound to ids, kinds to {!Ssta_tech.Gate}
    values, parameters applied, with the pre-edit values captured. *)
type change =
  | Gate_resize of { node : int; drive : float; old_drive : float }
  | Gate_retype of {
      node : int;
      kind : Ssta_tech.Gate.kind;
      old_kind : Ssta_tech.Gate.kind;
    }
  | Cell_move of {
      node : int;
      x : float;
      y : float;
      old_x : float;
      old_y : float;
    }
  | Config_set of {
      param : string;
      value : float;
      effect : Config.param_effect;
    }

val resolve : design -> Ssta_circuit.Edit.t -> (change list, Err.t) result
(** Bind an edit script to a design.  Unknown gate names, primary
    inputs, unknown or arity-mismatched kinds, moves landing outside
    the die (no quad-tree leaf), non-positive drives and invalid
    parameter deltas all come back as typed [Structural] errors naming
    the script line.  Edits are resolved sequentially, so a later edit
    sees the effect of earlier ones. *)

val apply : design -> change list -> design
(** Apply resolved changes; a fresh design (fresh netlist via
    {!Netlist.with_gate_kind}, fresh placement/drives arrays) — the
    original is untouched. *)

(** The static impact of a change list on a design. *)
type cone = {
  dirty : bool array;  (** per node: analysis-relevant change *)
  forward : bool array;  (** forward slice: nodes whose arrival the
                             edit can affect *)
  backward : bool array;  (** backward slice: nodes from which a dirty
                              node is reachable (affected prefixes) *)
  dirty_count : int;
  cone_nodes : int;  (** |forward ∪ backward| *)
  affected_endpoints : int list;
      (** primary outputs inside the forward slice *)
  full : bool;
      (** an [Analysis]/[Tables] parameter delta invalidates every
          cached path, cone notwithstanding *)
}

val cone_of : design -> change list -> cone
(** Cone on the {e pre-edit} design (the edit ops preserve netlist
    connectivity, so forward/backward slices agree on both sides). *)

(** {2 Incremental re-analysis} *)

type state
(** A warm incremental-analysis image: the current design, the warm
    inter-table/kernel-cache state, and the per-path analysis cache
    keyed by (path nodes, path delay).  Built once by {!init}, advanced
    by {!reanalyze}, probed without commitment by {!what_if}. *)

val init :
  ?pool:Ssta_parallel.Pool.t ->
  ?ledger:Health.t ->
  design ->
  (state * Methodology.t, Err.t) result
(** Run the full methodology once, populating the path cache, and
    return the baseline report.  [ledger] is the lifetime ledger the
    impact counters ([impact-edits], [impact-cone-nodes],
    [impact-paths-reused], [impact-paths-reanalyzed],
    [impact-cache-invalidated]) accumulate into — pass the server's
    lifetime ledger to surface them through the [health] op. *)

val design_of : state -> design
val cache_size : state -> int
val ledger : state -> Health.t

val fork : state -> state
(** An independent copy (shared warm tables — they are immutable-by-
    contract — private path cache); the what-if substrate. *)

type outcome = {
  report : Methodology.t;  (** spliced full report — byte-identical to
                               a from-scratch run *)
  cone : cone;
  invalidated : int;  (** cache entries dropped by this edit *)
  reused : int;  (** paths served from the cache *)
  reanalyzed : int;  (** paths analyzed fresh *)
}

val reanalyze :
  ?pool:Ssta_parallel.Pool.t ->
  state ->
  Ssta_circuit.Edit.t ->
  (outcome, Err.t) result
(** Resolve and apply an edit script, invalidate exactly the cached
    paths intersecting the dirty set (everything on a full
    invalidation), re-run the methodology with cache reuse, record the
    fresh analyses, and commit the new design to the state.  On error
    (unresolvable script, analysis failure) the state is unchanged. *)

val what_if :
  ?pool:Ssta_parallel.Pool.t ->
  state ->
  Ssta_circuit.Edit.t ->
  (outcome, Err.t) result
(** {!reanalyze} on a {!fork}: answers the question without mutating
    the state (the shared lifetime ledger still counts the traffic). *)

val scratch :
  ?pool:Ssta_parallel.Pool.t ->
  design ->
  (Methodology.t, Err.t) result
(** The certification comparand: a from-scratch run of the same design
    under a fresh warm state (warm-backed like the incremental run, so
    both reports exclude history-dependent cache counters). *)

val random_edits :
  rng:Ssta_prob.Rng.t -> count:int -> design -> Ssta_circuit.Edit.t
(** The seeded random-edit corpus: [count] single-gate edits — resize
    (drive in [0.6, 1.6]), arity-preserving retype (NAND↔NOR, AND↔OR,
    INV↔BUF, XOR↔XNOR) or in-die move — over uniformly chosen gates.
    Deterministic in [rng]. *)
