(** Lint rules for edit scripts ({!Ssta_circuit.Edit}): the
    pre-validation surface of the [diff] CLI command and the server
    [edit]/[what-if] ops.

    Errors ([edit-unknown-gate], [edit-unknown-kind],
    [edit-outside-die], [edit-bad-drive], [edit-unknown-param]) mean
    the script cannot be resolved against the design and the edit op
    must be refused; [edit-noop] warns about edits that change nothing
    (the new value equals the old one). *)

val rules : (string * string) list

val check :
  ?placement:Ssta_circuit.Placement.t ->
  ?drives:float array ->
  config:Ssta_core.Config.t ->
  Ssta_circuit.Netlist.t ->
  Ssta_circuit.Edit.t ->
  Diagnostic.t list
(** Validate a script against a design.  [placement] defaults to the
    computed placement, [drives] to all-1.0.  Edits are checked
    sequentially, so a no-op is judged against the state the earlier
    edits of the same script produce. *)
