module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Edit = Ssta_circuit.Edit
module Gate = Ssta_tech.Gate
module Config = Ssta_core.Config
module D = Diagnostic

let rules =
  [ ("edit-unknown-gate",
     "edit references an unknown gate name or a primary input");
    ("edit-unknown-kind",
     "retype names an unknown gate kind or one of the wrong arity");
    ("edit-outside-die",
     "placement move lands outside the die bounds — in no quad-tree \
      leaf");
    ("edit-bad-drive", "resize drive is not finite and positive");
    ("edit-unknown-param",
     "set names an unknown methodology parameter or an out-of-range \
      value");
    ("edit-noop", "edit changes nothing: the new value equals the old") ]

let check ?placement ?drives ~config c (edits : Edit.t) =
  let placement =
    match placement with Some pl -> pl | None -> Placement.place c
  in
  (* Mutable views of the design state, advanced edit by edit so no-op
     detection follows the script's sequential semantics. *)
  let drives =
    match drives with
    | Some d -> Array.copy d
    | None -> Array.make (Netlist.num_nodes c) 1.0
  in
  let coords = Array.copy placement.Placement.coords in
  let kinds =
    Array.map (fun (g : Netlist.gate) -> g.Netlist.kind) c.Netlist.gates
  in
  let config = ref config in
  let ds = ref [] in
  let emit ~rule ~severity ~location ?hint ~line fmt =
    Printf.ksprintf
      (fun m ->
        ds :=
          D.make ~rule ~severity ~location ?hint
            (Printf.sprintf "line %d: %s" line m)
          :: !ds)
      fmt
  in
  let noop ~line ~location fmt =
    emit ~rule:"edit-noop" ~severity:D.Warning ~location ~line fmt
  in
  let gate_node ~line name =
    match Netlist.find_node c name with
    | None ->
        emit ~rule:"edit-unknown-gate" ~severity:D.Error ~location:D.Circuit
          ~line "unknown gate %S" name;
        None
    | Some id when Netlist.is_input c id ->
        emit ~rule:"edit-unknown-gate" ~severity:D.Error
          ~location:(D.Node { id; name }) ~line
          "%S is a primary input, not a gate" name;
        None
    | Some id -> Some id
  in
  List.iter
    (fun { Edit.op; line } ->
      match op with
      | Edit.Resize { gate; drive } -> (
          match gate_node ~line gate with
          | None -> ()
          | Some id ->
              let loc = D.Node { id; name = gate } in
              if not (Float.is_finite drive && drive > 0.0) then
                emit ~rule:"edit-bad-drive" ~severity:D.Error ~location:loc
                  ~line "drive must be finite and positive, got %g" drive
              else if drives.(id) = drive then
                noop ~line ~location:loc
                  "gate %s already has drive %g" gate drive
              else drives.(id) <- drive)
      | Edit.Retype { gate; kind } -> (
          match gate_node ~line gate with
          | None -> ()
          | Some id -> (
              let loc = D.Node { id; name = gate } in
              let arity =
                Array.length (Netlist.gate_of c id).Netlist.fanins
              in
              match Gate.of_name (String.uppercase_ascii kind) arity with
              | None ->
                  emit ~rule:"edit-unknown-kind" ~severity:D.Error
                    ~location:loc ~line
                    "unknown gate kind %S for a %d-input gate" kind arity
              | Some k ->
                  let gi = id - c.Netlist.num_inputs in
                  if kinds.(gi) = k then
                    noop ~line ~location:loc "gate %s is already a %s" gate
                      (Gate.name k)
                  else kinds.(gi) <- k))
      | Edit.Move { gate; x; y } -> (
          match gate_node ~line gate with
          | None -> ()
          | Some id ->
              let w = placement.Placement.die_width
              and h = placement.Placement.die_height in
              if
                (not (Float.is_finite x && Float.is_finite y))
                || x < 0.0 || y < 0.0 || x > w || y > h
              then
                emit ~rule:"edit-outside-die" ~severity:D.Error
                  ~location:(D.Place { id; x; y })
                  ~hint:
                    (Printf.sprintf "die bounding box is (0, 0) .. (%g, %g)"
                       w h)
                  ~line "move lands outside the die — in no quad-tree leaf"
              else if coords.(id) = (x, y) then
                noop ~line ~location:(D.Place { id; x; y })
                  "gate %s is already at (%g, %g)" gate x y
              else coords.(id) <- (x, y))
      | Edit.Set { param; value } -> (
          match Config.set_param !config param value with
          | Error msg ->
              emit ~rule:"edit-unknown-param" ~severity:D.Error
                ~location:D.Config ~line "%s" msg
          | Ok (next, _) ->
              if next = !config then
                noop ~line ~location:D.Config "%s is already %g" param value
              else config := next))
    edits;
  List.rev !ds
