module D = Diagnostic

let text ~circuit_name fmt ds =
  let s = Engine.summarize ds in
  Format.fprintf fmt "%s: %d diagnostic(s) (%d error(s), %d warning(s), %d info(s))@."
    circuit_name
    (List.length ds) s.Engine.errors s.Engine.warnings s.Engine.infos;
  List.iter
    (fun (d : D.t) ->
      Format.fprintf fmt "  %a@." D.pp d;
      match d.D.hint with
      | Some h -> Format.fprintf fmt "    hint: %s@." h
      | None -> ())
    ds

(* Minimal JSON emission; strings are escaped per RFC 8259. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%g" f
  else Printf.sprintf "\"%g\"" f

let location_json = function
  | D.Circuit -> "{\"kind\":\"circuit\"}"
  | D.Node { id; name } ->
      Printf.sprintf "{\"kind\":\"node\",\"id\":%d,\"name\":\"%s\"}" id
        (json_escape name)
  | D.Place { id; x; y } ->
      Printf.sprintf "{\"kind\":\"place\",\"id\":%d,\"x\":%s,\"y\":%s}" id
        (json_float x) (json_float y)
  | D.Net n ->
      Printf.sprintf "{\"kind\":\"net\",\"name\":\"%s\"}" (json_escape n)
  | D.Config -> "{\"kind\":\"config\"}"
  | D.Pdf n ->
      Printf.sprintf "{\"kind\":\"pdf\",\"name\":\"%s\"}" (json_escape n)
  | D.File { path; line; col } ->
      Printf.sprintf "{\"kind\":\"file\",\"path\":\"%s\",\"line\":%d,\"col\":%d}"
        (json_escape path) line col

let diagnostic_json (d : D.t) =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"location\":%s,\"message\":\"%s\",\"hint\":%s}"
    (json_escape d.D.rule)
    (D.severity_name d.D.severity)
    (location_json d.D.location)
    (json_escape d.D.message)
    (match d.D.hint with
    | Some h -> Printf.sprintf "\"%s\"" (json_escape h)
    | None -> "null")

let json ~circuit_name fmt ds =
  let s = Engine.summarize ds in
  Format.fprintf fmt
    "{\"circuit\":\"%s\",\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"total\":%d},\"diagnostics\":[%s]}@."
    (json_escape circuit_name)
    s.Engine.errors s.Engine.warnings s.Engine.infos (List.length ds)
    (String.concat "," (List.map diagnostic_json ds))

let rule_table fmt rules =
  let width =
    List.fold_left (fun acc (id, _) -> Int.max acc (String.length id)) 0 rules
  in
  List.iter
    (fun (id, doc) -> Format.fprintf fmt "%-*s  %s@." width id doc)
    rules
