module D = Diagnostic

(* All reporters render in the deterministic presentation order:
   (file/location, line, rule id). *)
let order ds = List.stable_sort D.presentation_compare ds

let text ~circuit_name fmt ds =
  let s = Engine.summarize ds in
  Format.fprintf fmt "%s: %d diagnostic(s) (%d error(s), %d warning(s), %d info(s))@."
    circuit_name
    (List.length ds) s.Engine.errors s.Engine.warnings s.Engine.infos;
  List.iter
    (fun (d : D.t) ->
      Format.fprintf fmt "  %a@." D.pp d;
      match d.D.hint with
      | Some h -> Format.fprintf fmt "    hint: %s@." h
      | None -> ())
    (order ds)

(* Minimal JSON emission; strings are escaped per RFC 8259. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%g" f
  else Printf.sprintf "\"%g\"" f

let location_json = function
  | D.Circuit -> "{\"kind\":\"circuit\"}"
  | D.Node { id; name } ->
      Printf.sprintf "{\"kind\":\"node\",\"id\":%d,\"name\":\"%s\"}" id
        (json_escape name)
  | D.Place { id; x; y } ->
      Printf.sprintf "{\"kind\":\"place\",\"id\":%d,\"x\":%s,\"y\":%s}" id
        (json_float x) (json_float y)
  | D.Net n ->
      Printf.sprintf "{\"kind\":\"net\",\"name\":\"%s\"}" (json_escape n)
  | D.Config -> "{\"kind\":\"config\"}"
  | D.Pdf n ->
      Printf.sprintf "{\"kind\":\"pdf\",\"name\":\"%s\"}" (json_escape n)
  | D.File { path; line; col } ->
      Printf.sprintf "{\"kind\":\"file\",\"path\":\"%s\",\"line\":%d,\"col\":%d}"
        (json_escape path) line col

let diagnostic_json (d : D.t) =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"location\":%s,\"message\":\"%s\",\"hint\":%s}"
    (json_escape d.D.rule)
    (D.severity_name d.D.severity)
    (location_json d.D.location)
    (json_escape d.D.message)
    (match d.D.hint with
    | Some h -> Printf.sprintf "\"%s\"" (json_escape h)
    | None -> "null")

let json ~circuit_name fmt ds =
  let s = Engine.summarize ds in
  Format.fprintf fmt
    "{\"circuit\":\"%s\",\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"total\":%d},\"diagnostics\":[%s]}@."
    (json_escape circuit_name)
    s.Engine.errors s.Engine.warnings s.Engine.infos (List.length ds)
    (String.concat "," (List.map diagnostic_json (order ds)))

(* SARIF 2.1.0 (the subset GitHub code scanning ingests): one run, one
   driver, the rule catalogue, one result per diagnostic. *)
let sarif_level = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let sarif_location (loc : D.location) =
  match loc with
  | D.File { path; line; col } ->
      Printf.sprintf
        "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d%s}}}"
        (json_escape path)
        (Int.max 1 line)
        (if col > 0 then Printf.sprintf ",\"startColumn\":%d" col else "")
  | _ ->
      let name = Format.asprintf "%a" D.pp_location loc in
      Printf.sprintf
        "{\"logicalLocations\":[{\"name\":\"%s\",\"kind\":\"object\"}]}"
        (json_escape name)

let sarif_result rule_index (d : D.t) =
  let message =
    match d.D.hint with
    | Some h -> d.D.message ^ " (hint: " ^ h ^ ")"
    | None -> d.D.message
  in
  let index =
    match rule_index d.D.rule with
    | Some i -> Printf.sprintf ",\"ruleIndex\":%d" i
    | None -> ""
  in
  Printf.sprintf
    "{\"ruleId\":\"%s\"%s,\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[%s]}"
    (json_escape d.D.rule) index (sarif_level d.D.severity)
    (json_escape message)
    (sarif_location d.D.location)

let sarif ~tool ~rules ~circuit_name fmt ds =
  let rule_index =
    let tbl = Hashtbl.create (List.length rules) in
    List.iteri (fun i (id, _) -> Hashtbl.replace tbl id i) rules;
    fun id -> Hashtbl.find_opt tbl id
  in
  let rule_json (id, doc) =
    Printf.sprintf
      "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
      (json_escape id) (json_escape doc)
  in
  Format.fprintf fmt
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"%s\",\"rules\":[%s]}},\"properties\":{\"circuit\":\"%s\"},\"results\":[%s]}]}@."
    (json_escape tool)
    (String.concat "," (List.map rule_json rules))
    (json_escape circuit_name)
    (String.concat "," (List.map (sarif_result rule_index) (order ds)))

let rule_table fmt rules =
  let width =
    List.fold_left (fun acc (id, _) -> Int.max acc (String.length id)) 0 rules
  in
  List.iter
    (fun (id, doc) -> Format.fprintf fmt "%-*s  %s@." width id doc)
    rules
