(** Rendering of lint results.

    Two formats: a human-readable text listing and a machine-readable
    JSON document with the schema

    {v
      { "circuit": string,
        "summary": { "errors": int, "warnings": int,
                     "infos": int, "total": int },
        "diagnostics": [
          { "rule": string,
            "severity": "error" | "warning" | "info",
            "location": { "kind": "circuit" | "node" | "place" | "net"
                                | "config" | "pdf" | "file", ... },
            "message": string,
            "hint": string | null } ] }
    v}

    Node locations carry ["id"] and ["name"]; place locations ["id"],
    ["x"], ["y"]; net/pdf locations ["name"]; file locations ["path"]
    and ["line"]. *)

val text :
  circuit_name:string -> Format.formatter -> Diagnostic.t list -> unit

val json :
  circuit_name:string -> Format.formatter -> Diagnostic.t list -> unit

val rule_table : Format.formatter -> (string * string) list -> unit
(** Render the rule catalogue (for [--list-rules]). *)
