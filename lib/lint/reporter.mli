(** Rendering of lint results.

    Two formats: a human-readable text listing and a machine-readable
    JSON document with the schema

    {v
      { "circuit": string,
        "summary": { "errors": int, "warnings": int,
                     "infos": int, "total": int },
        "diagnostics": [
          { "rule": string,
            "severity": "error" | "warning" | "info",
            "location": { "kind": "circuit" | "node" | "place" | "net"
                                | "config" | "pdf" | "file", ... },
            "message": string,
            "hint": string | null } ] }
    v}

    Node locations carry ["id"] and ["name"]; place locations ["id"],
    ["x"], ["y"]; net/pdf locations ["name"]; file locations ["path"]
    and ["line"]. *)

(** A third format, SARIF 2.1.0, serves CI upload (GitHub code
    scanning); it is shared by the lint and check subcommands, which
    pass their own tool name and rule catalogue.

    Every reporter renders diagnostics in the deterministic presentation
    order of {!Diagnostic.presentation_compare} — by location (file
    locations by path, then line), then rule id — regardless of input
    order. *)

val text :
  circuit_name:string -> Format.formatter -> Diagnostic.t list -> unit

val json :
  circuit_name:string -> Format.formatter -> Diagnostic.t list -> unit

val sarif :
  tool:string ->
  rules:(string * string) list ->
  circuit_name:string ->
  Format.formatter ->
  Diagnostic.t list ->
  unit
(** SARIF 2.1.0 document: one run with driver [tool], the given rule
    catalogue (ids + short descriptions; results reference it by
    index), and one result per diagnostic.  Severities map
    error/warning/info to error/warning/note.  File locations become
    physical locations; all others become logical locations. *)

val rule_table : Format.formatter -> (string * string) list -> unit
(** Render the rule catalogue (for [--list-rules]). *)
