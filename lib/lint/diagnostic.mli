(** Structured lint diagnostics.

    Every finding of the static-analysis pass is a {!t}: a stable rule
    identifier (kebab-case, namespaced by input layer — [net-*],
    [place-*], [spef-*], [def-*], [config-*], [budget-*], [timing-*],
    [pdf-*]), a severity, a location inside the analyzed artifacts, a
    human-readable message and an optional fix-it hint.  Diagnostics are
    plain data; rendering lives in {!Reporter}. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val severity_of_name : string -> severity option

val severity_rank : severity -> int
(** [Error] is 0, [Warning] 1, [Info] 2 — lower is more severe. *)

val at_least : min:severity -> severity -> bool
(** [at_least ~min s] is true when [s] is at least as severe as
    [min]. *)

type location =
  | Circuit  (** the netlist as a whole *)
  | Node of { id : int; name : string }  (** one netlist node *)
  | Place of { id : int; x : float; y : float }
      (** a placed node with its coordinates (microns) *)
  | Net of string  (** a named net of a SPEF/DEF annotation *)
  | Config  (** the methodology configuration *)
  | Pdf of string  (** a named probability density *)
  | File of { path : string; line : int; col : int }
      (** a position in an input file; [col] 0 when unknown *)

type t = {
  rule : string;  (** stable rule identifier *)
  severity : severity;
  location : location;
  message : string;
  hint : string option;  (** optional fix-it suggestion *)
}

val make :
  ?hint:string -> rule:string -> severity:severity -> location:location ->
  string -> t

val compare : t -> t -> int
(** Orders by severity (errors first), then rule id, then location —
    the triage order used by the engines. *)

val presentation_compare : t -> t -> int
(** Orders by location (file locations by path, then line, then
    column), then rule id, then severity, then message — the
    deterministic presentation order of the reporters, chosen so
    findings in the same file read top to bottom. *)

val pp_location : Format.formatter -> location -> unit

val pp : Format.formatter -> t -> unit
(** One-line rendering: [severity[rule] location: message]. *)

val of_error : Ssta_runtime.Ssta_error.t -> t
(** Render a typed runtime error as a diagnostic: parse errors map to
    {!constructor-File} locations (with column when known), numeric
    errors to {!constructor-Pdf}, budget breaches to warnings. *)
