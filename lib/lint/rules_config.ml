module Config = Ssta_core.Config
module Budget = Ssta_correlation.Budget
module D = Diagnostic

let rules =
  [ ("config-invalid", "Config.validate rejected the configuration");
    ("config-quality", "suspicious PDF discretization quality points");
    ("config-confidence", "confidence constant beyond 1.0");
    ("config-deadline",
     "configured inter quality cannot cold-build its kernel within the \
      deadline budget");
    ("config-jobs", "worker count exceeds the host's available cores");
    ("budget-shares", "layer variance shares do not sum to the total");
    ("budget-degenerate", "intra-die layers carry zero variance") ]

let quality_ceiling = 4000

(* Conservative per-cell cost of the O(Q^3) inter-kernel cold build
   (dominant term: Q_inter^3 density evaluations when the scale-covariant
   cache is cold).  8 ns/cell is calibrated well above the measured
   hotpath numbers, so the estimate errs toward warning early: the
   paper's Q = 50 estimates at 1 ms, the 4000-cell sanity ceiling at
   ~8.5 min. *)
let cold_build_cell_ns = 8.0

let inter_cold_build_estimate_s q =
  let q = float_of_int q in
  q *. q *. q *. cold_build_cell_ns *. 1e-9

let check_budget_weights ?layers weights =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let n = Array.length weights in
  if n = 0 then
    emit
      (D.make ~rule:"budget-shares" ~severity:D.Error ~location:D.Config
         "empty budget weight vector")
  else begin
    (match layers with
    | Some l when l <> n ->
        emit
          (D.make ~rule:"budget-shares" ~severity:D.Error ~location:D.Config
             ~hint:"one weight per correlation layer (layer 0 is inter-die)"
             (Printf.sprintf "%d weights for %d layers" n l))
    | _ -> ());
    let bad = ref false in
    Array.iteri
      (fun i w ->
        if (not (Float.is_finite w)) || w < 0.0 then begin
          bad := true;
          emit
            (D.make ~rule:"budget-shares" ~severity:D.Error ~location:D.Config
               (Printf.sprintf "weight %g of layer %d is negative or not finite"
                  w i))
        end)
      weights;
    if not !bad then begin
      let sum = Array.fold_left ( +. ) 0.0 weights in
      if Float.abs (sum -. 1.0) > 1e-6 then
        emit
          (D.make ~rule:"budget-shares" ~severity:D.Error ~location:D.Config
             ~hint:"Eq. (14): per-layer variances must sum to the total"
             (Printf.sprintf "weights sum to %.6f, expected 1" sum));
      (* All the variance on layer 0 means no intra-die variation. *)
      let intra = Array.sub weights 1 (Int.max 0 (n - 1)) in
      if n > 1 && Array.for_all (fun w -> w = 0.0) intra then
        emit
          (D.make ~rule:"budget-degenerate" ~severity:D.Warning
             ~location:D.Config
             ~hint:"path PDFs collapse to the inter-die part"
             "intra-die layers carry zero variance")
    end
  end;
  List.rev !ds

let check ?deadline_s ?jobs ?host_cores (cfg : Config.t) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg ->
      emit
        (D.make ~rule:"config-invalid" ~severity:D.Error ~location:D.Config
           msg));
  if cfg.Config.quality_inter > cfg.Config.quality_intra then
    emit
      (D.make ~rule:"config-quality" ~severity:D.Warning ~location:D.Config
         ~hint:"the paper picks QUALITY_intra 100 >= QUALITY_inter 50"
         (Printf.sprintf "quality_inter %d exceeds quality_intra %d"
            cfg.Config.quality_inter cfg.Config.quality_intra));
  if
    cfg.Config.quality_intra > quality_ceiling
    || cfg.Config.quality_inter > quality_ceiling
  then
    emit
      (D.make ~rule:"config-quality" ~severity:D.Warning ~location:D.Config
         ~hint:"PDF combination cost grows quadratically in the quality"
         (Printf.sprintf "quality points %d/%d beyond the %d sanity ceiling"
            cfg.Config.quality_intra cfg.Config.quality_inter quality_ceiling));
  (match deadline_s with
  | Some deadline when deadline > 0.0 ->
      let estimate = inter_cold_build_estimate_s cfg.Config.quality_inter in
      if estimate > deadline then
        emit
          (D.make ~rule:"config-deadline" ~severity:D.Warning
             ~location:D.Config
             ~hint:
               "lower quality_inter or raise the deadline; the run will \
                start but degrade before producing results"
             (Printf.sprintf
                "quality_inter %d estimates a %.3g s inter-kernel cold \
                 build (O(Q^3), %.0f ns/cell), beyond the %.3g s deadline"
                cfg.Config.quality_inter estimate cold_build_cell_ns
                deadline))
  | _ -> ());
  (* Results are jobs-independent by the pool's determinism contract, so
     an over-subscribed worker count is purely a performance smell:
     extra domains time-share the cores (speedup ~1.0 at best, minor
     slowdown from the pool machinery at worst). *)
  (match jobs with
  | Some jobs when jobs > 1 ->
      let host_cores =
        match host_cores with
        | Some c -> c
        | None -> Domain.recommended_domain_count ()
      in
      if jobs > host_cores then
        emit
          (D.make ~rule:"config-jobs" ~severity:D.Warning ~location:D.Config
             ~hint:
               "results are byte-identical at any --jobs value; extra \
                domains only time-share the cores"
             (Printf.sprintf
                "%d worker domains requested on a host with %d core%s"
                jobs host_cores (if host_cores = 1 then "" else "s")))
  | _ -> ());
  if cfg.Config.confidence > 1.0 then
    emit
      (D.make ~rule:"config-confidence" ~severity:D.Warning ~location:D.Config
         ~hint:"the paper uses C in [0.05, 0.2]"
         (Printf.sprintf
            "confidence constant %g makes near-critical enumeration explode"
            cfg.Config.confidence));
  let budget = cfg.Config.budget in
  let weights =
    Array.init (Budget.layers budget) (fun i -> Budget.weight budget i)
  in
  let layers = Config.num_layers cfg in
  List.rev !ds @ check_budget_weights ~layers weights
