(** Checks on a placement against its netlist and the quad-tree layer
    structure.

    Rules:
    - [place-count-mismatch] (error): the coordinate array does not
      cover every node of the netlist (remaining rules are skipped).
    - [place-degenerate-die] (error): non-positive or non-finite die
      dimensions.
    - [place-outside-die] (error): a node placed outside the die
      bounding box.
    - [place-overlap] (warning): two or more nodes at the same
      coordinates (within 1e-3 micron).
    - [place-empty-partition] (info): leaf partitions of the deepest
      quad-tree layer containing no gates — the spatial-correlation
      model degenerates there. *)

val check :
  ?quad_levels:int ->
  Ssta_circuit.Netlist.t ->
  Ssta_circuit.Placement.t ->
  Diagnostic.t list
(** [quad_levels] defaults to 4, the paper's layer count. *)

val rules : (string * string) list
