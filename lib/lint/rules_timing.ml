module Graph = Ssta_timing.Graph
module Netlist = Ssta_circuit.Netlist
module Pdf = Ssta_prob.Pdf
module Path_analysis = Ssta_core.Path_analysis
module D = Diagnostic

let rules =
  [ ("timing-nonfinite-delay", "NaN, infinite or negative nominal gate delay");
    ("pdf-invalid-density", "PDF density has NaN, infinite or negative cells");
    ("pdf-mass", "PDF total probability mass is not 1");
    ("timing-zero-intra", "zero intra-die sigma on a multi-gate path") ]

let check_graph (g : Graph.t) =
  let c = g.Graph.circuit in
  let ds = ref [] in
  Array.iteri
    (fun id d ->
      if (not (Netlist.is_input c id)) && ((not (Float.is_finite d)) || d < 0.0)
      then
        ds :=
          D.make ~rule:"timing-nonfinite-delay" ~severity:D.Error
            ~location:(D.Node { id; name = Netlist.node_name c id })
            ~hint:"check the electrical model and the load capacitances"
            (Printf.sprintf "nominal delay %g s" d)
          :: !ds)
    g.Graph.delay;
  List.rev !ds

let check_pdf ~label (p : Pdf.t) =
  let ds = ref [] in
  let bad = ref 0 in
  Array.iter
    (fun d -> if (not (Float.is_finite d)) || d < 0.0 then incr bad)
    p.Pdf.density;
  if !bad > 0 then
    ds :=
      D.make ~rule:"pdf-invalid-density" ~severity:D.Error
        ~location:(D.Pdf label)
        ~hint:"a NaN upstream poisons every convolution it enters"
        (Printf.sprintf "%d of %d density cells are NaN, infinite or negative"
           !bad (Pdf.size p))
      :: !ds
  else begin
    let mass = Pdf.total_mass p in
    if Float.abs (mass -. 1.0) > 1e-6 then
      ds :=
        D.make ~rule:"pdf-mass" ~severity:D.Error ~location:(D.Pdf label)
          (Printf.sprintf "total probability mass %.9f, expected 1" mass)
        :: !ds
  end;
  List.rev !ds

let check_path_analysis (a : Path_analysis.t) =
  let ds =
    check_pdf ~label:"intra" a.Path_analysis.intra_pdf
    @ check_pdf ~label:"inter" a.Path_analysis.inter_pdf
    @ check_pdf ~label:"total" a.Path_analysis.total_pdf
  in
  if a.Path_analysis.gate_count >= 2 && a.Path_analysis.intra_sigma <= 0.0
  then
    ds
    @ [ D.make ~rule:"timing-zero-intra" ~severity:D.Warning
          ~location:(D.Pdf "intra")
          ~hint:"Eq. (14) coefficients all vanished; check derivatives/budget"
          (Printf.sprintf "intra sigma %g on a path of %d gates"
             a.Path_analysis.intra_sigma a.Path_analysis.gate_count) ]
  else ds
