module Netlist = Ssta_circuit.Netlist
module Spef = Ssta_circuit.Spef
module Def_format = Ssta_circuit.Def_format
module D = Diagnostic

let rules =
  [ ("spef-orphan-net", "SPEF annotation names a node absent from the netlist");
    ("spef-negative-cap", "negative or non-finite net capacitance");
    ("spef-cap-outlier", "net capacitance wildly out of range");
    ("spef-duplicate-net", "net annotated more than once");
    ("spef-low-coverage", "fewer than half the gates carry an annotation");
    ("def-unknown-component", "DEF component matches no gate of the netlist");
    ("def-outside-die", "DEF component placed outside the DIEAREA");
    ("def-duplicate-component", "DEF component name appears more than once");
    ("def-low-coverage", "fewer than half the gates have a DEF component") ]

let name_table c =
  let table = Hashtbl.create 256 in
  for id = 0 to Netlist.num_nodes c - 1 do
    Hashtbl.replace table (Netlist.node_name c id) id
  done;
  table

let check_spef ?(cap_limit = 1e-10) (spef : Spef.t) c =
  let table = name_table c in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let seen = Hashtbl.create 256 in
  let matched = ref 0 in
  List.iter
    (fun (net, cap) ->
      (match Hashtbl.find_opt table net with
      | None ->
          emit
            (D.make ~rule:"spef-orphan-net" ~severity:D.Error
               ~location:(D.Net net)
               ~hint:"check that the SPEF was extracted from this netlist"
               "annotation names a node absent from the netlist")
      | Some _ -> incr matched);
      if Hashtbl.mem seen net then
        emit
          (D.make ~rule:"spef-duplicate-net" ~severity:D.Warning
             ~location:(D.Net net)
             ~hint:"the last record wins in Spef.apply"
             "net annotated more than once")
      else Hashtbl.add seen net ();
      if (not (Float.is_finite cap)) || cap < 0.0 then
        emit
          (D.make ~rule:"spef-negative-cap" ~severity:D.Error
             ~location:(D.Net net)
             (Printf.sprintf "capacitance %g F is negative or not finite" cap))
      else if cap > cap_limit then
        emit
          (D.make ~rule:"spef-cap-outlier" ~severity:D.Warning
             ~location:(D.Net net)
             ~hint:"check the SPEF capacitance units (expected farads here)"
             (Printf.sprintf "capacitance %g F exceeds the %g F sanity limit"
                cap cap_limit)))
    spef.Spef.caps;
  if !matched * 2 < Netlist.num_gates c then
    emit
      (D.make ~rule:"spef-low-coverage" ~severity:D.Error ~location:D.Circuit
         ~hint:"Spef.apply rejects pairings covering under half the gates"
         (Printf.sprintf "only %d of %d gates annotated" !matched
            (Netlist.num_gates c)));
  List.rev !ds

let check_def (def : Def_format.t) c =
  let table = name_table c in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let seen = Hashtbl.create 256 in
  let matched = ref 0 in
  let w = def.Def_format.die_width and h = def.Def_format.die_height in
  List.iter
    (fun (comp : Def_format.component) ->
      let name = comp.Def_format.comp_name in
      (match Hashtbl.find_opt table name with
      | Some id when not (Netlist.is_input c id) -> incr matched
      | Some _ | None ->
          emit
            (D.make ~rule:"def-unknown-component" ~severity:D.Warning
               ~location:(D.Net name)
               ~hint:"check that the DEF was written for this netlist"
               "component matches no gate of the netlist"));
      if Hashtbl.mem seen name then
        emit
          (D.make ~rule:"def-duplicate-component" ~severity:D.Warning
             ~location:(D.Net name) "component name appears more than once")
      else Hashtbl.add seen name ();
      let x = comp.Def_format.x and y = comp.Def_format.y in
      if
        (not (Float.is_finite x && Float.is_finite y))
        || x < 0.0 || y < 0.0 || x > w || y > h
      then
        emit
          (D.make ~rule:"def-outside-die" ~severity:D.Error
             ~location:(D.Net name)
             ~hint:(Printf.sprintf "DIEAREA is (0, 0) .. (%g, %g) microns" w h)
             (Printf.sprintf "component placed at (%g, %g), outside the die" x
                y)))
    def.Def_format.components;
  if !matched * 2 < Netlist.num_gates c then
    emit
      (D.make ~rule:"def-low-coverage" ~severity:D.Error ~location:D.Circuit
         ~hint:"Def_format.placement_of rejects pairings under half coverage"
         (Printf.sprintf "only %d of %d gates have a placed component"
            !matched (Netlist.num_gates c)));
  List.rev !ds
