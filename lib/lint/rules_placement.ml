module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Layers = Ssta_correlation.Layers
module D = Diagnostic

let rules =
  [ ("place-count-mismatch",
     "coordinate array does not cover every netlist node");
    ("place-degenerate-die", "non-positive or non-finite die dimensions");
    ("place-outside-die", "node placed outside the die bounding box");
    ("place-overlap", "several gates share the same coordinates");
    ("place-empty-partition",
     "deepest quad-tree layer has partitions with no gates") ]

let check ?(quad_levels = 4) c (pl : Placement.t) =
  let n = Netlist.num_nodes c in
  let coords = pl.Placement.coords in
  if Array.length coords <> n then
    [ D.make ~rule:"place-count-mismatch" ~severity:D.Error
        ~location:D.Circuit
        ~hint:"re-run the placer on this netlist"
        (Printf.sprintf "placement has %d coordinates for %d nodes"
           (Array.length coords) n) ]
  else begin
    let ds = ref [] in
    let emit d = ds := d :: !ds in
    let w = pl.Placement.die_width and h = pl.Placement.die_height in
    let die_ok =
      Float.is_finite w && Float.is_finite h && w > 0.0 && h > 0.0
    in
    if not die_ok then
      emit
        (D.make ~rule:"place-degenerate-die" ~severity:D.Error
           ~location:D.Circuit
           (Printf.sprintf "die is %g x %g microns" w h));
    (* place-outside-die *)
    if die_ok then
      Array.iteri
        (fun id (x, y) ->
          if
            (not (Float.is_finite x && Float.is_finite y))
            || x < 0.0 || y < 0.0 || x > w || y > h
          then
            emit
              (D.make ~rule:"place-outside-die" ~severity:D.Error
                 ~location:(D.Place { id; x; y })
                 ~hint:
                   (Printf.sprintf "die bounding box is (0, 0) .. (%g, %g)" w
                      h)
                 "node placed outside the die bounding box"))
        coords;
    (* place-overlap: exact collisions after rounding to 1e-3 micron.
       Primary inputs carry no gate delay, so only gates count — DEF
       files legitimately leave inputs unplaced at the origin. *)
    let key (x, y) =
      (Float.round (x *. 1000.0), Float.round (y *. 1000.0))
    in
    let groups : (float * float, int list) Hashtbl.t = Hashtbl.create n in
    Array.iteri
      (fun id xy ->
        if not (Netlist.is_input c id) then begin
          let k = key xy in
          let prev = Option.value (Hashtbl.find_opt groups k) ~default:[] in
          Hashtbl.replace groups k (id :: prev)
        end)
      coords;
    Hashtbl.iter
      (fun _ ids ->
        match List.rev ids with
        | first :: (_ :: _ as rest) ->
            let x, y = coords.(first) in
            emit
              (D.make ~rule:"place-overlap" ~severity:D.Warning
                 ~location:(D.Place { id = first; x; y })
                 ~hint:"overlapping gates make spatial correlation degenerate"
                 (Printf.sprintf "%d other node(s) at the same spot (%s)"
                    (List.length rest)
                    (String.concat ", " (List.map string_of_int rest))))
        | _ -> ())
      groups;
    (* place-empty-partition on the deepest spatial layer. *)
    if die_ok && quad_levels >= 1 && Netlist.num_gates c > 0 then begin
      let layers =
        Layers.create ~quad_levels ~random_layer:false ~die_width:w
          ~die_height:h ()
      in
      let level = quad_levels - 1 in
      let parts = Layers.partitions_at layers level in
      let occupancy = Array.make parts 0 in
      Array.iter
        (fun (g : Netlist.gate) ->
          let x, y = coords.(g.Netlist.id) in
          if Float.is_finite x && Float.is_finite y then begin
            let p = Layers.partition_of layers ~level ~x ~y in
            occupancy.(p) <- occupancy.(p) + 1
          end)
        c.Netlist.gates;
      let empty = Array.fold_left (fun acc o -> if o = 0 then acc + 1 else acc) 0 occupancy in
      if empty > 0 then
        emit
          (D.make ~rule:"place-empty-partition" ~severity:D.Info
             ~location:D.Circuit
             ~hint:"a denser placement uses the correlation layers better"
             (Printf.sprintf
                "%d of %d partitions at quad-tree level %d contain no gates"
                empty parts level))
    end;
    List.rev !ds
  end
