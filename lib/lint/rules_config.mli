(** Checks on the methodology configuration and the layer variance
    budget (Eq. 14 requires the per-layer shares to reproduce the total
    variance).

    Rules:
    - [config-invalid] (error): {!Ssta_core.Config.validate} rejected
      the configuration.
    - [config-quality] (warning): suspicious PDF discretizations —
      [quality_inter > quality_intra] (the paper picks 100/50), or a
      quality point beyond 4000 cells (quadratic run-time blow-up).
    - [config-confidence] (warning): a confidence constant above 1.0 —
      near-critical enumeration explodes.
    - [config-deadline] (warning): the configured [quality_inter] makes
      the O(Q^3) inter-kernel cold build estimate (at a conservative
      8 ns per cell) exceed the configured deadline budget — the run
      would burn its deadline before analyzing a single path.
    - [config-jobs] (warning): more worker domains requested than the
      host has cores (notably [--jobs N > 1] on a single-core machine) —
      results stay byte-identical, but the extra domains only time-share
      the cores.
    - [budget-shares] (error): a raw weight vector that is empty, has
      negative or non-finite entries, does not sum to 1, or does not
      match the layer count.
    - [budget-degenerate] (warning): the intra-die layers carry zero
      variance — every path PDF collapses to the inter-die part. *)

val check :
  ?deadline_s:float ->
  ?jobs:int ->
  ?host_cores:int ->
  Ssta_core.Config.t ->
  Diagnostic.t list
(** Configuration checks, including budget checks on the (normalized)
    weights embedded in the config.  [deadline_s] is the run's deadline
    budget, if any: when given, the [config-deadline] cross-check
    compares it against the inter-kernel cold-build estimate.  [jobs] is
    the requested worker count, cross-checked against [host_cores]
    (default: [Domain.recommended_domain_count ()]) by the
    [config-jobs] rule. *)

val check_budget_weights :
  ?layers:int -> float array -> Diagnostic.t list
(** Validate a raw, un-normalized weight vector (e.g. parsed from the
    command line) against Eq. (14): non-negative, finite, summing to 1
    within 1e-6, and of length [layers] when given. *)

val rules : (string * string) list
