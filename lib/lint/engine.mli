(** The lint engine: runs every applicable rule over a bundle of input
    artifacts and returns the sorted diagnostics.

    Layering: config/budget checks come first (a broken config voids the
    deeper analyses), then netlist structure, placement, SPEF/DEF
    cross-checks, and finally — unless [deep] is disabled — the timing
    graph is built and the deterministic critical path is analyzed
    statistically so the resulting PDFs can be sanity-checked
    (NaN/Inf-free, unit mass, non-degenerate intra variance). *)

type input = {
  circuit : Ssta_circuit.Netlist.t;
  placement : Ssta_circuit.Placement.t option;
  spef : Ssta_circuit.Spef.t option;
  def : Ssta_circuit.Def_format.t option;
  config : Ssta_core.Config.t;
  budget_weights : float array option;
      (** raw (pre-normalization) weights to validate, e.g. parsed from
          the command line *)
  deadline_s : float option;
      (** the run's deadline budget, for the config-vs-budget
          cross-check ([config-deadline]) *)
  edits : Ssta_circuit.Edit.t option;
      (** an edit script to validate against the circuit/placement
          ({!Rules_edit}) *)
  jobs : int option;
      (** the requested worker count, for the oversubscription
          cross-check ([config-jobs]) *)
  deep : bool;  (** run the timing-graph / PDF checks (default true) *)
}

val input :
  ?placement:Ssta_circuit.Placement.t ->
  ?spef:Ssta_circuit.Spef.t ->
  ?def:Ssta_circuit.Def_format.t ->
  ?config:Ssta_core.Config.t ->
  ?budget_weights:float array ->
  ?deadline_s:float ->
  ?edits:Ssta_circuit.Edit.t ->
  ?jobs:int ->
  ?deep:bool ->
  Ssta_circuit.Netlist.t ->
  input
(** Bundle inputs; [config] defaults to {!Ssta_core.Config.default}. *)

val run : input -> Diagnostic.t list
(** Execute every applicable rule; the result is sorted with
    {!Diagnostic.compare} (errors first).  The deep timing checks are
    skipped when the config or placement already produced errors (they
    could not run meaningfully), and an internal failure of the deep
    analysis is reported as a [lint-internal] error rather than an
    exception. *)

type summary = { errors : int; warnings : int; infos : int }

val summarize : Diagnostic.t list -> summary

val filter :
  min_severity:Diagnostic.severity -> Diagnostic.t list -> Diagnostic.t list
(** Keep diagnostics at least as severe as [min_severity]. *)

val has_errors : Diagnostic.t list -> bool

val exit_code : Diagnostic.t list -> int
(** 0 when error-free, 1 otherwise — the CLI contract. *)

val all_rules : (string * string) list
(** Every rule id the engine can emit with its one-line description,
    sorted by id. *)
