(** Cross-checks of SPEF / DEF annotations against the netlist they are
    meant to annotate.

    SPEF rules:
    - [spef-orphan-net] (error): a [*D_NET] record naming a node absent
      from the netlist.
    - [spef-negative-cap] (error): a negative or non-finite capacitance
      (only reachable on programmatically built annotations — the parser
      rejects them — but lint guards the API path too).
    - [spef-cap-outlier] (warning): a capacitance beyond [cap_limit]
      farads (default 1e-10, i.e. 100 pF — orders of magnitude above any
      plausible net in this technology).
    - [spef-duplicate-net] (warning): the same net annotated twice.
    - [spef-low-coverage] (error): fewer than half the gates annotated —
      {!Ssta_circuit.Spef.apply} would reject the pairing at run time.

    DEF rules:
    - [def-unknown-component] (warning): a component whose name matches
      no gate of the netlist.
    - [def-outside-die] (error): a component placed outside the DIEAREA.
    - [def-duplicate-component] (warning): the same component name twice.
    - [def-low-coverage] (error): fewer than half the gates matched —
      {!Ssta_circuit.Def_format.placement_of} would reject the pairing. *)

val check_spef :
  ?cap_limit:float ->
  Ssta_circuit.Spef.t ->
  Ssta_circuit.Netlist.t ->
  Diagnostic.t list

val check_def :
  Ssta_circuit.Def_format.t -> Ssta_circuit.Netlist.t -> Diagnostic.t list

val rules : (string * string) list
