type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let at_least ~min s = severity_rank s <= severity_rank min

type location =
  | Circuit
  | Node of { id : int; name : string }
  | Place of { id : int; x : float; y : float }
  | Net of string
  | Config
  | Pdf of string
  | File of { path : string; line : int; col : int }

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
  hint : string option;
}

let make ?hint ~rule ~severity ~location message =
  { rule; severity; location; message; hint }

(* Orders by kind, then name/path, then line/id, then column — so file
   locations group by path before comparing positions. *)
let location_key = function
  | Circuit -> (0, "", 0, 0)
  | Node { id; _ } -> (1, "", id, 0)
  | Place { id; _ } -> (2, "", id, 0)
  | Net n -> (3, n, 0, 0)
  | Config -> (4, "", 0, 0)
  | Pdf n -> (5, n, 0, 0)
  | File { path; line; col } -> (6, path, line, col)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else Stdlib.compare (location_key a.location) (location_key b.location)

let presentation_compare a b =
  let c = Stdlib.compare (location_key a.location) (location_key b.location) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c =
        Int.compare (severity_rank a.severity) (severity_rank b.severity)
      in
      if c <> 0 then c else String.compare a.message b.message

let pp_location fmt = function
  | Circuit -> Format.fprintf fmt "circuit"
  | Node { id; name } -> Format.fprintf fmt "node '%s' (id %d)" name id
  | Place { id; x; y } ->
      Format.fprintf fmt "node %d at (%.2f, %.2f)" id x y
  | Net n -> Format.fprintf fmt "net '%s'" n
  | Config -> Format.fprintf fmt "config"
  | Pdf n -> Format.fprintf fmt "pdf '%s'" n
  | File { path; line; col } ->
      if col > 0 then Format.fprintf fmt "%s:%d:%d" path line col
      else Format.fprintf fmt "%s:%d" path line

let pp fmt t =
  Format.fprintf fmt "%s[%s] %a: %s"
    (severity_name t.severity)
    t.rule pp_location t.location t.message

let of_error (e : Ssta_runtime.Ssta_error.t) =
  let module E = Ssta_runtime.Ssta_error in
  match e with
  | E.Parse { pos; format; message } ->
      let path = Option.value pos.E.file ~default:"<input>" in
      make ~rule:"parse-error" ~severity:Error
        ~location:(File { path; line = pos.E.line; col = pos.E.col })
        (Printf.sprintf "%s: %s" format message)
  | E.Structural { subject; message } ->
      make ~rule:"structural-error" ~severity:Error ~location:Circuit
        (Printf.sprintf "%s: %s" subject message)
  | E.Numeric { op; message } ->
      make ~rule:"numeric-error" ~severity:Error ~location:(Pdf op) message
  | E.Budget_exceeded { resource; message } ->
      make ~rule:"budget-exceeded" ~severity:Warning ~location:Config
        (Printf.sprintf "%s: %s" resource message)
  | E.Internal { context; message } ->
      make ~rule:"internal-error" ~severity:Error ~location:Circuit
        (Printf.sprintf "%s: %s" context message)
