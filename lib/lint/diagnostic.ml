type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let at_least ~min s = severity_rank s <= severity_rank min

type location =
  | Circuit
  | Node of { id : int; name : string }
  | Place of { id : int; x : float; y : float }
  | Net of string
  | Config
  | Pdf of string
  | File of { path : string; line : int }

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
  hint : string option;
}

let make ?hint ~rule ~severity ~location message =
  { rule; severity; location; message; hint }

let location_key = function
  | Circuit -> (0, 0, "")
  | Node { id; _ } -> (1, id, "")
  | Place { id; _ } -> (2, id, "")
  | Net n -> (3, 0, n)
  | Config -> (4, 0, "")
  | Pdf n -> (5, 0, n)
  | File { path; line } -> (6, line, path)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else Stdlib.compare (location_key a.location) (location_key b.location)

let pp_location fmt = function
  | Circuit -> Format.fprintf fmt "circuit"
  | Node { id; name } -> Format.fprintf fmt "node '%s' (id %d)" name id
  | Place { id; x; y } ->
      Format.fprintf fmt "node %d at (%.2f, %.2f)" id x y
  | Net n -> Format.fprintf fmt "net '%s'" n
  | Config -> Format.fprintf fmt "config"
  | Pdf n -> Format.fprintf fmt "pdf '%s'" n
  | File { path; line } -> Format.fprintf fmt "%s:%d" path line

let pp fmt t =
  Format.fprintf fmt "%s[%s] %a: %s"
    (severity_name t.severity)
    t.rule pp_location t.location t.message
