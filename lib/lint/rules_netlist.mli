(** Structural checks on the gate-level netlist.

    Rules (ids are stable):
    - [net-dangling] (error for gates, warning for inputs): a node whose
      output drives nothing and that is not a primary output.
    - [net-unreachable] (error): a gate with consumers but no directed
      path to any primary output — dead logic the timer would silently
      ignore.
    - [net-duplicate-gate] (info): two gates of the same kind with the
      same fan-in multiset (structural duplicates, load-splitting
      aside).
    - [net-constant-gate] (warning): a gate whose output is provably
      constant because every fan-in is the same node (XOR(a,a),
      XNOR(a,a)).
    - [net-fanout-outlier] (info): a node driving more than
      [fanout_limit] consumers.
    - [net-depth-outlier] (info): logic depth out of proportion with the
      gate count (chain-like topology on a large circuit). *)

val check :
  ?fanout_limit:int -> Ssta_circuit.Netlist.t -> Diagnostic.t list
(** Run every netlist rule.  [fanout_limit] defaults to 64. *)

val rules : (string * string) list
(** [(rule id, one-line description)] of every rule this module can
    emit. *)
