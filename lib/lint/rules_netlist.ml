module Netlist = Ssta_circuit.Netlist
module Gate = Ssta_tech.Gate
module D = Diagnostic

let rules =
  [ ("net-dangling",
     "node output drives nothing and is not a primary output");
    ("net-unreachable",
     "gate has consumers but no directed path to any primary output");
    ("net-duplicate-gate",
     "two gates of the same kind share the same fan-in multiset");
    ("net-constant-gate",
     "gate output is provably constant (all fan-ins are the same node)");
    ("net-fanout-outlier", "node drives an unusually large fan-out");
    ("net-depth-outlier",
     "logic depth out of proportion with the gate count") ]

let node_loc c id = D.Node { id; name = Netlist.node_name c id }

let check ?(fanout_limit = 64) c =
  let n = Netlist.num_nodes c in
  let counts = Netlist.fanout_counts c in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  (* net-dangling: primary outputs contribute one sink each to [counts],
     so a zero count implies the node is not an output either. *)
  for id = 0 to n - 1 do
    if counts.(id) = 0 then
      if Netlist.is_input c id then
        emit
          (D.make ~rule:"net-dangling" ~severity:D.Warning
             ~location:(node_loc c id)
             ~hint:"remove the input or connect it to a gate"
             "primary input is never used")
      else
        emit
          (D.make ~rule:"net-dangling" ~severity:D.Error
             ~location:(node_loc c id)
             ~hint:"mark the gate as a primary output or remove it"
             "gate output drives nothing and is not a primary output")
  done;
  (* net-unreachable: reverse DFS from the primary outputs over fan-ins.
     Dangling gates already got their own error above; this rule covers
     live-looking gates whose every forward path ends in a dangling
     sink. *)
  let reachable = Array.make n false in
  let rec visit id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      if not (Netlist.is_input c id) then
        Array.iter visit (Netlist.gate_of c id).Netlist.fanins
    end
  in
  Array.iter visit c.Netlist.outputs;
  Array.iter
    (fun (g : Netlist.gate) ->
      if (not reachable.(g.Netlist.id)) && counts.(g.Netlist.id) > 0 then
        emit
          (D.make ~rule:"net-unreachable" ~severity:D.Error
             ~location:(node_loc c g.Netlist.id)
             ~hint:"the gate's fan-out cone never reaches a primary output"
             "gate is unreachable from every primary output"))
    c.Netlist.gates;
  (* net-duplicate-gate: same kind, same fan-in multiset. *)
  let seen : (string, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let ins = Array.to_list g.Netlist.fanins |> List.sort Int.compare in
      let key =
        Gate.name g.Netlist.kind
        ^ "/" ^ string_of_int (Array.length g.Netlist.fanins)
        ^ ":" ^ String.concat "," (List.map string_of_int ins)
      in
      match Hashtbl.find_opt seen key with
      | None -> Hashtbl.add seen key g.Netlist.id
      | Some first ->
          emit
            (D.make ~rule:"net-duplicate-gate" ~severity:D.Info
               ~location:(node_loc c g.Netlist.id)
               ~hint:"merge the duplicates unless they split load on purpose"
               (Printf.sprintf
                  "structurally identical to gate '%s' (id %d)"
                  (Netlist.node_name c first) first)))
    c.Netlist.gates;
  (* net-constant-gate: XOR/XNOR with every fan-in the same node. *)
  Array.iter
    (fun (g : Netlist.gate) ->
      let all_same =
        Array.length g.Netlist.fanins >= 2
        && Array.for_all (fun f -> f = g.Netlist.fanins.(0)) g.Netlist.fanins
      in
      match g.Netlist.kind with
      | Gate.Xor2 | Gate.Xnor2 when all_same ->
          let value = if g.Netlist.kind = Gate.Xor2 then "0" else "1" in
          emit
            (D.make ~rule:"net-constant-gate" ~severity:D.Warning
               ~location:(node_loc c g.Netlist.id)
               ~hint:"replace the gate by the constant it computes"
               (Printf.sprintf
                  "all fan-ins are node %d; output is constant %s"
                  g.Netlist.fanins.(0) value))
      | _ -> ())
    c.Netlist.gates;
  (* net-fanout-outlier *)
  for id = 0 to n - 1 do
    if counts.(id) > fanout_limit then
      emit
        (D.make ~rule:"net-fanout-outlier" ~severity:D.Info
           ~location:(node_loc c id)
           ~hint:"consider buffering the net"
           (Printf.sprintf "fan-out %d exceeds the limit %d" counts.(id)
              fanout_limit))
  done;
  (* net-depth-outlier *)
  let gates = Netlist.num_gates c in
  let depth = Netlist.depth c in
  if gates >= 20 && depth > Int.max 30 (gates / 2) then
    emit
      (D.make ~rule:"net-depth-outlier" ~severity:D.Info ~location:D.Circuit
         ~hint:"chain-like topologies defeat spatial-correlation sharing"
         (Printf.sprintf "logic depth %d is extreme for %d gates" depth
            gates));
  List.rev !ds
