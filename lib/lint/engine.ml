module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Config = Ssta_core.Config
module Sta = Ssta_timing.Sta
module Path_analysis = Ssta_core.Path_analysis
module D = Diagnostic

type input = {
  circuit : Netlist.t;
  placement : Placement.t option;
  spef : Ssta_circuit.Spef.t option;
  def : Ssta_circuit.Def_format.t option;
  config : Config.t;
  budget_weights : float array option;
  deadline_s : float option;
  edits : Ssta_circuit.Edit.t option;
  jobs : int option;
  deep : bool;
}

let input ?placement ?spef ?def ?(config = Config.default) ?budget_weights
    ?deadline_s ?edits ?jobs ?(deep = true) circuit =
  { circuit;
    placement;
    spef;
    def;
    config;
    budget_weights;
    deadline_s;
    edits;
    jobs;
    deep }

let deep_checks i =
  (* One Bellman-Ford pass plus a single-path statistical analysis —
     cheap relative to the full methodology, and enough to catch NaN
     poisoning, mass leaks and dead derivative tables. *)
  try
    let sta = Sta.analyze i.circuit in
    let graph_ds = Rules_timing.check_graph sta.Sta.graph in
    let placement =
      match i.placement with
      | Some pl -> pl
      | None -> Placement.place i.circuit
    in
    let ctx = Path_analysis.context i.config sta.Sta.graph placement in
    let a = Path_analysis.analyze ctx sta.Sta.critical_path in
    graph_ds @ Rules_timing.check_path_analysis a
  with e ->
    [ D.make ~rule:"lint-internal" ~severity:D.Error ~location:D.Circuit
        ~hint:"the input is malformed enough to crash the analyzer"
        (Printf.sprintf "deep timing analysis failed: %s"
           (Printexc.to_string e)) ]

let run i =
  let config_ds =
    Rules_config.check ?deadline_s:i.deadline_s ?jobs:i.jobs i.config
    @
    match i.budget_weights with
    | Some w ->
        Rules_config.check_budget_weights
          ~layers:(Config.num_layers i.config) w
    | None -> []
  in
  let netlist_ds = Rules_netlist.check i.circuit in
  let placement_ds =
    match i.placement with
    | Some pl ->
        Rules_placement.check ~quad_levels:i.config.Config.quad_levels
          i.circuit pl
    | None -> []
  in
  let spef_ds =
    match i.spef with
    | Some s -> Rules_annotation.check_spef s i.circuit
    | None -> []
  in
  let def_ds =
    match i.def with
    | Some d -> Rules_annotation.check_def d i.circuit
    | None -> []
  in
  let edit_ds =
    match i.edits with
    | Some es ->
        Rules_edit.check ?placement:i.placement ~config:i.config i.circuit es
    | None -> []
  in
  let shallow =
    config_ds @ netlist_ds @ placement_ds @ spef_ds @ def_ds @ edit_ds
  in
  let blocked =
    List.exists
      (fun (d : D.t) ->
        d.D.severity = D.Error
        && (String.length d.D.rule >= 6 && String.sub d.D.rule 0 6 = "config"
           || String.length d.D.rule >= 5 && String.sub d.D.rule 0 5 = "place"))
      shallow
  in
  let deep_ds = if i.deep && not blocked then deep_checks i else [] in
  List.sort D.compare (shallow @ deep_ds)

type summary = { errors : int; warnings : int; infos : int }

let summarize ds =
  List.fold_left
    (fun acc (d : D.t) ->
      match d.D.severity with
      | D.Error -> { acc with errors = acc.errors + 1 }
      | D.Warning -> { acc with warnings = acc.warnings + 1 }
      | D.Info -> { acc with infos = acc.infos + 1 })
    { errors = 0; warnings = 0; infos = 0 }
    ds

let filter ~min_severity ds =
  List.filter
    (fun (d : D.t) -> D.at_least ~min:min_severity d.D.severity)
    ds

let has_errors ds = List.exists (fun (d : D.t) -> d.D.severity = D.Error) ds
let exit_code ds = if has_errors ds then 1 else 0

let all_rules =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Rules_netlist.rules @ Rules_placement.rules @ Rules_annotation.rules
   @ Rules_config.rules @ Rules_timing.rules @ Rules_edit.rules
    @ [ ("lint-internal", "deep timing analysis crashed on this input") ])
