(** Post-build sanity of the timing graph and of the statistical
    path-analysis outputs (the paper's PDFs).

    Rules:
    - [timing-nonfinite-delay] (error): a nominal gate delay that is
      NaN, infinite or negative.
    - [pdf-invalid-density] (error): a PDF density containing NaN,
      infinite or negative cells.
    - [pdf-mass] (error): total probability mass off 1 by more than
      1e-6.
    - [timing-zero-intra] (warning): zero intra-die sigma on a path of
      two or more gates — the Eq. (14) coefficients all vanished, which
      means the derivative tables or the budget are broken. *)

val check_graph : Ssta_timing.Graph.t -> Diagnostic.t list

val check_pdf : label:string -> Ssta_prob.Pdf.t -> Diagnostic.t list
(** [label] names the PDF in the diagnostic location. *)

val check_path_analysis : Ssta_core.Path_analysis.t -> Diagnostic.t list
(** Runs {!check_pdf} over the intra / inter / total PDFs of one
    analyzed path plus the zero-intra-variance check. *)

val rules : (string * string) list
