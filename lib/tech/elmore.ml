let eps_ox = 3.9 *. 8.854e-12
let elmore_constant = 0.345

let voltage_factor ~vdd ~vt =
  let headroom = vdd -. vt in
  let linear = (1.5 *. vdd) -. (2.0 *. vt) in
  if headroom <= 0.0 || linear <= 0.0 then
    invalid_arg "Elmore.voltage_factor: outside model validity domain";
  (vdd /. (headroom ** 1.3)) +. (1.0 /. linear)

let gate_delay (e : Gate.electrical) (p : Params.t) =
  let geometry = elmore_constant *. p.Params.tox *. p.Params.leff /. eps_ox in
  let vn = voltage_factor ~vdd:p.Params.vdd ~vt:p.Params.vtn in
  let vp = voltage_factor ~vdd:p.Params.vdd ~vt:p.Params.vtp in
  geometry *. ((e.Gate.alpha *. vn) +. (e.Gate.beta *. vp))

let nominal_delay e = gate_delay e Params.nominal

(* F(vdd, vt) is strictly decreasing in vdd and strictly increasing in vt
   on the validity domain: dF/dvdd = (v - vt)^-1.3 - 1.3 v (v - vt)^-2.3
   - 1.5 (1.5 v - 2 vt)^-2 = (v - vt)^-2.3 (v - vt - 1.3 v) - ... < 0
   because v - vt - 1.3 v = -(0.3 v + vt) < 0, and dF/dvt has the
   opposite signs on both terms.  The geometry prefactor is increasing in
   tox and leff, so the exact extrema of gate_delay over an axis-aligned
   parameter box lie at two known corners. *)
let delay_bounds ?(sigmas = Params.sigmas) ~bound (e : Gate.electrical) =
  if not (bound >= 0.0) then
    invalid_arg "Elmore.delay_bounds: bound must be non-negative";
  let dev rv = bound *. Params.get sigmas rv in
  let corner ~sign_geom ~sign_vdd ~sign_vt =
    { Params.tox = Params.nominal.Params.tox +. (sign_geom *. dev Params.Tox);
      leff = Params.nominal.Params.leff +. (sign_geom *. dev Params.Leff);
      vdd = Params.nominal.Params.vdd +. (sign_vdd *. dev Params.Vdd);
      vtn = Params.nominal.Params.vtn +. (sign_vt *. dev Params.Vtn);
      vtp = Params.nominal.Params.vtp +. (sign_vt *. dev Params.Vtp) }
  in
  (* Fast corner: thin/short device, high supply, low thresholds.
     Slow corner: the opposite. *)
  let fast = corner ~sign_geom:(-1.0) ~sign_vdd:1.0 ~sign_vt:(-1.0) in
  let fast =
    { fast with
      Params.vtn = Float.max 0.0 fast.Params.vtn;
      vtp = Float.max 0.0 fast.Params.vtp }
  in
  let slow = corner ~sign_geom:1.0 ~sign_vdd:(-1.0) ~sign_vt:1.0 in
  if not (Params.is_physical slow) then
    invalid_arg
      "Elmore.delay_bounds: slow corner outside model validity domain";
  (* Wide boxes (large [bound]) can push the fast corner's geometry
     through zero.  The delay is linear in tox*leff with a positive
     voltage factor, so its infimum over the physical part of the box is
     0 — a sound (if loose) lower bound; no scope caveat needed. *)
  let lo =
    if fast.Params.tox <= 0.0 || fast.Params.leff <= 0.0 then 0.0
    else if not (Params.is_physical fast) then
      invalid_arg
        "Elmore.delay_bounds: fast corner outside model validity domain"
    else gate_delay e fast
  in
  (lo, gate_delay e slow)

let path_delay gates p =
  List.fold_left (fun acc e -> acc +. gate_delay e p) 0.0 gates

let ps t = t *. 1e12
