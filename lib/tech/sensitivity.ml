type entry = {
  rv : Params.rv;
  derivative : float;
  sigma : float;
  impact : float;
}

type row = { gate : Gate.kind; entries : entry list }

let analyze ?(fanout = 2) kind =
  let e = Gate.electrical ~fanout kind in
  let entries =
    List.map
      (fun rv ->
        let derivative = Derivatives.first e Params.nominal rv in
        let sigma = Params.sigma rv in
        { rv; derivative; sigma; impact = Float.abs (derivative *. sigma) })
      Params.all_rvs
  in
  { gate = kind; entries }

let table1_gates = [ Gate.Nand 2; Gate.Nor 2; Gate.Inv; Gate.Xnor2 ]
let table1 () = List.map (fun g -> analyze g) table1_gates

let dominant row =
  match row.entries with
  | [] -> invalid_arg "Sensitivity.dominant: empty row"
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc e -> if e.impact > acc.impact then e else acc)
          first rest
      in
      best.rv

let pp_table fmt rows =
  let gate_label row =
    match row.gate with
    | Gate.Nand n -> Printf.sprintf "%d-NAND" n
    | Gate.Nor n -> Printf.sprintf "%d-NOR" n
    | Gate.Inv -> "INV"
    | Gate.Xnor2 -> "2-XNOR"
    | Gate.Xor2 -> "2-XOR"
    | Gate.Buf -> "BUF"
    | Gate.And n -> Printf.sprintf "%d-AND" n
    | Gate.Or n -> Printf.sprintf "%d-OR" n
  in
  Format.fprintf fmt "%-8s" "";
  List.iter (fun row -> Format.fprintf fmt "%10s" (gate_label row)) rows;
  Format.pp_print_newline fmt ();
  List.iter
    (fun rv ->
      Format.fprintf fmt "%-8s" (Params.rv_name rv);
      List.iter
        (fun row ->
          let entry = List.find (fun e -> e.rv = rv) row.entries in
          Format.fprintf fmt "%8.3fps" (Elmore.ps entry.impact))
        rows;
      Format.pp_print_newline fmt ())
    Params.all_rvs
