(** Short-channel Elmore gate-delay model — Eq. (2) of the paper.

    The propagation delay of a gate with coefficients [alpha], [beta]
    (from {!Gate.electrical}) at parameter point X is

    {v
      t_p = 0.345 * (t_ox * L_eff / eps_ox)
            * ( alpha * F(V_dd, V_Tn) + beta * F(V_dd, |V_Tp|) )
      F(v, vt) = v / (v - vt)^1.3 + 1 / (1.5 v - 2 vt)
    v}

    All delays are in seconds; helpers convert to picoseconds. *)

val eps_ox : float
(** Oxide permittivity, F/m (3.9 * eps_0). *)

val elmore_constant : float
(** The 0.345 prefactor of Eq. (1). *)

val voltage_factor : vdd:float -> vt:float -> float
(** The function F above.  Raises [Invalid_argument] outside the model's
    validity domain ([vdd - vt <= 0] or [1.5 vdd - 2 vt <= 0]). *)

val gate_delay : Gate.electrical -> Params.t -> float
(** Full nonlinear delay of one gate at a parameter point (Eq. 2). *)

val nominal_delay : Gate.electrical -> float
(** Delay at {!Params.nominal}. *)

val delay_bounds :
  ?sigmas:Params.t -> bound:float -> Gate.electrical -> float * float
(** [delay_bounds ~bound e] is the exact range [(lo, hi)] of
    [gate_delay e] over the axis-aligned parameter box
    [nominal +- bound * sigma] (componentwise, [sigmas] defaulting to
    {!Params.sigmas}).  Exactness follows from monotonicity: the delay is
    increasing in [t_ox], [L_eff], [V_Tn], [V_Tp] and decreasing in
    [V_dd], so the extrema are attained at the fast corner (thin/short
    device, high supply, low thresholds) and the slow corner (the
    opposite).

    Very wide boxes are handled soundly: fast-corner thresholds below
    zero clamp to zero, and when the fast corner's geometry crosses zero
    the lower bound is 0 (the delay is linear in [t_ox * L_eff] with a
    positive voltage factor, so 0 is the infimum over the physical part
    of the box).  Raises [Invalid_argument] if the slow corner — or a
    fast corner with positive geometry — leaves the delay model's
    validity domain. *)

val path_delay : Gate.electrical list -> Params.t -> float
(** Sum of gate delays with {e shared} parameters — the fully correlated
    evaluation used for corner analysis (Eq. 5 with all gates at the same
    point). *)

val ps : float -> float
(** Seconds to picoseconds. *)
