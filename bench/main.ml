(* Benchmark harness: regenerates every table and figure of the paper
   (printing the same rows/series it reports) and then times one
   representative kernel per artifact with Bechamel.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table2 fig5  # a subset
     dune exec bench/main.exe -- --no-bechamel *)

module Iscas85 = Ssta_circuit.Iscas85
module Sensitivity = Ssta_tech.Sensitivity
module Convexity = Ssta_tech.Convexity
module Elmore = Ssta_tech.Elmore
module Sta = Ssta_timing.Sta
module Pdf = Ssta_prob.Pdf
module Dist = Ssta_prob.Dist
module Combine = Ssta_prob.Combine
module Stats = Ssta_prob.Stats
module Rng = Ssta_prob.Rng
module Pool = Ssta_parallel.Pool
open Ssta_core

let section name = Fmt.pr "@.=== %s ===@." name

(* Cache methodology runs so figures reuse the Table 2 work. *)
let runs : (string, Methodology.t) Hashtbl.t = Hashtbl.create 16

let run_benchmark ?(max_paths = 2000) (spec : Iscas85.spec) =
  let key = Printf.sprintf "%s/%d" spec.Iscas85.name max_paths in
  match Hashtbl.find_opt runs key with
  | Some m -> m
  | None ->
      let circuit, placement = Iscas85.build_placed spec in
      let config =
        Config.with_confidence Config.default
          spec.Iscas85.paper.Iscas85.confidence
      in
      let config = { config with Config.max_paths } in
      let m = Methodology.run ~config ~placement circuit in
      Hashtbl.replace runs key m;
      m

let spec_exn name =
  match Iscas85.by_name name with
  | Some s -> s
  | None -> Fmt.failwith "missing benchmark %s" name

(* ------------------------------------------------------------------ *)
(* Table 1: gate delay sensitivities.                                  *)

let table1 () =
  section "Table 1: sensitivity of the Elmore delay (1-sigma impacts)";
  Sensitivity.pp_table Fmt.stdout (Sensitivity.table1 ());
  Fmt.pr "(paper, 2-NAND column: t_ox 0.587, L_eff 2.061, V_dd 0.360, \
          V_Tn 0.071, |V_Tp| 0.088 ps)@."

(* ------------------------------------------------------------------ *)
(* Table 2: the benchmark suite.                                       *)

let table2 () =
  section "Table 2: deterministic vs probabilistic analysis, ISCAS85 suite";
  Report.pp_table2_header Fmt.stdout ();
  let rows =
    List.map
      (fun spec ->
        let m = run_benchmark spec in
        let row = Report.table2_row m in
        Report.pp_table2_row Fmt.stdout row;
        (spec, row))
      Iscas85.all
  in
  Fmt.pr "@.shape comparison against the published table:@.";
  List.iter
    (fun ((spec : Iscas85.spec), row) ->
      Report.pp_table2_comparison Fmt.stdout ~paper:spec.Iscas85.paper row)
    rows;
  let avg =
    List.fold_left (fun a (_, r) -> a +. r.Report.overestimation_pct) 0.0 rows
    /. float_of_int (List.length rows)
  in
  Fmt.pr "@.average worst-case overestimation: %.1f%% (paper: 55%%)@." avg

(* ------------------------------------------------------------------ *)
(* Table 3: inter/intra split on c432.                                 *)

let table3 () =
  section "Table 3: inter- and intra-die variation split (c432, C = 0.2)";
  let circuit, placement = Iscas85.build_placed (spec_exn "c432") in
  let base = Config.with_confidence Config.default 0.2 in
  Report.pp_table3_header Fmt.stdout ();
  List.iter
    (fun (scenario, inter_fraction) ->
      let config = Config.with_budget_split base ~inter_fraction in
      let m = Methodology.run ~config ~placement circuit in
      Report.pp_table3_row Fmt.stdout
        (Report.table3_row ~scenario ~inter_fraction m))
    [ ("only intra-die", 0.0); ("50% inter, 50% intra", 0.5);
      ("75% inter, 25% intra", 0.75) ];
  Fmt.pr "(paper: sigma 19.95 -> 35.58 -> 41.39 ps; paths 20 -> 54 -> 76)@."

(* ------------------------------------------------------------------ *)
(* Fig. 3: delay PDFs of the 1st / middle / last ranked paths (c1355). *)

let fig3 () =
  section "Fig. 3: delay PDFs of ranked near-critical paths of c1355";
  let m = run_benchmark (spec_exn "c1355") in
  let n = Methodology.num_critical_paths m in
  let describe rank =
    let r = Methodology.find_rank m ~prob_rank:rank in
    let a = r.Ranking.analysis in
    Fmt.pr "  path #%-5d mean %8.3f ps  sigma %7.3f ps  3-sigma %8.3f ps@."
      rank
      (Elmore.ps a.Path_analysis.mean)
      (Elmore.ps a.Path_analysis.std)
      (Elmore.ps a.Path_analysis.confidence_point)
  in
  describe 1;
  describe ((n + 1) / 2);
  describe n;
  let first = (Methodology.find_rank m ~prob_rank:1).Ranking.analysis in
  let last = (Methodology.find_rank m ~prob_rank:n).Ranking.analysis in
  let spread =
    first.Path_analysis.confidence_point
    -. last.Path_analysis.confidence_point
  in
  Fmt.pr "  3-sigma spread across %d paths: %.3f ps (%.2f%% of mean) — the \
          PDFs nearly coincide, as in the paper's figure@."
    n (Elmore.ps spread)
    (spread /. first.Path_analysis.mean *. 100.0)

(* ------------------------------------------------------------------ *)
(* Fig. 4: intra / inter / total PDFs of c432's critical path.         *)

let fig4 () =
  section "Fig. 4: intra-, inter- and total delay PDFs (c432 critical path)";
  let m = run_benchmark (spec_exn "c432") in
  let d = m.Methodology.det_critical in
  let show name p =
    Fmt.pr "  %-6s mean %8.3f ps  sigma %7.3f ps  [%8.3f .. %8.3f] ps@." name
      (Elmore.ps (Pdf.mean p))
      (Elmore.ps (Pdf.std p))
      (Elmore.ps p.Pdf.lo)
      (Elmore.ps (Pdf.hi p))
  in
  show "intra" d.Path_analysis.intra_pdf;
  show "inter" d.Path_analysis.inter_pdf;
  show "total" d.Path_analysis.total_pdf;
  Fmt.pr "  3-sigma point %.3f ps vs worst-case %.3f ps (%.1f%% \
          overestimation; paper: 56.6%%)@."
    (Elmore.ps d.Path_analysis.confidence_point)
    (Elmore.ps d.Path_analysis.worst_case)
    (Path_analysis.overestimation_pct d)

(* ------------------------------------------------------------------ *)
(* Figs. 5/6: probabilistic vs deterministic ranks.                    *)

let rank_figure name =
  let m = run_benchmark (spec_exn name) in
  let ranked = m.Methodology.ranked in
  let pairs = Ranking.rank_pairs ~first:100 ranked in
  Fmt.pr "  first 10 (det_rank, prob_rank) pairs:";
  Array.iteri (fun i (d, p) -> if i < 10 then Fmt.pr " (%d,%d)" d p) pairs;
  Fmt.pr "@.  Spearman %.4f, max rank change %d, det rank of prob-critical \
          %d@."
    (Ranking.rank_correlation ranked)
    (Ranking.max_rank_change ranked)
    (Ranking.det_rank_of_prob_critical ranked)

let fig5 () =
  section "Fig. 5: probabilistic vs deterministic rank, c1355 (large churn)";
  rank_figure "c1355"

let fig6 () =
  section "Fig. 6: probabilistic vs deterministic rank, c7552 (small churn)";
  rank_figure "c7552"

(* ------------------------------------------------------------------ *)
(* QUALITY trade-off (Section 4, on c499).                             *)

let quality () =
  section "QUALITY accuracy/run-time trade-off (c499 critical path)";
  let circuit, _ = Iscas85.build_placed (spec_exn "c499") in
  let sweep = Quality_sweep.run circuit in
  Quality_sweep.pp Fmt.stdout sweep;
  let k = Quality_sweep.knee sweep in
  Fmt.pr "knee: Qintra=%d Qinter=%d (err %.4f%%) — the paper picks \
          (100, 50)@."
    k.Quality_sweep.quality_intra k.Quality_sweep.quality_inter
    k.Quality_sweep.error_pct

(* ------------------------------------------------------------------ *)
(* Convexity claim (Section 2.5).                                      *)

let convexity () =
  section "Convexity analysis (Section 2.5)";
  Convexity.pp_table Fmt.stdout
    (List.map (fun g -> Convexity.analyze g) Sensitivity.table1_gates)

(* ------------------------------------------------------------------ *)
(* Ablation: analytic PDF vs exact Monte-Carlo.                        *)

let mc_validation () =
  section "Ablation: Taylor/grid PDF vs exact Monte-Carlo (c432 critical)";
  let circuit, placement = Iscas85.build_placed (spec_exn "c432") in
  let sta = Sta.analyze circuit in
  let ctx = Path_analysis.context Config.default sta.Sta.graph placement in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  let sampler = Monte_carlo.sampler Config.default sta.Sta.graph placement in
  let rng = Rng.create 1 in
  let v = Monte_carlo.validate_path ~n:40_000 sampler rng a in
  Fmt.pr "  analytic mean %.3f ps std %.3f ps | sampled mean %.3f ps std \
          %.3f ps@."
    (Elmore.ps a.Path_analysis.mean)
    (Elmore.ps a.Path_analysis.std)
    (Elmore.ps v.Monte_carlo.sampled.Stats.mean)
    (Elmore.ps v.Monte_carlo.sampled.Stats.std);
  Fmt.pr "  |mean err| %.4f ps (%.3f%%), |std err| %.4f ps, KS %.4f@."
    (Elmore.ps v.Monte_carlo.mean_err)
    (v.Monte_carlo.mean_err /. a.Path_analysis.mean *. 100.0)
    (Elmore.ps v.Monte_carlo.std_err)
    v.Monte_carlo.ks;
  (* second-order intra refinement: recovers the intra Jensen shift the
     first-order model misses *)
  let corr = Second_order.of_path Config.default sta.Sta.graph placement
      sta.Sta.critical_path in
  let corrected = Second_order.corrected_mean a corr in
  Fmt.pr "  second-order intra correction: mean shift %+.4f ps, corrected \
          |mean err| %.4f ps, intra skewness %.4f@."
    (Elmore.ps corr.Second_order.mean_shift)
    (Elmore.ps
       (Float.abs (v.Monte_carlo.sampled.Stats.mean -. corrected)))
    corr.Second_order.skewness;
  Fmt.pr "  (MC standard error of the mean at 40k samples: %.3f ps; over \
          250k samples the corrected error is ~0.006 ps vs ~0.55 ps \
          first-order)@."
    (Elmore.ps (v.Monte_carlo.sampled.Stats.std /. 200.0))

(* ------------------------------------------------------------------ *)
(* Ablation: path-based vs block-based (Clark) vs Monte-Carlo.         *)

let block_based () =
  section "Ablation: block-based (Clark) full-chip SSTA vs Monte-Carlo (c432)";
  let circuit, placement = Iscas85.build_placed (spec_exn "c432") in
  let bb = Block_based.analyze ~placement circuit in
  let sta = Sta.analyze circuit in
  let sampler = Monte_carlo.sampler Config.default sta.Sta.graph placement in
  let rng = Rng.create 424242 in
  let mc = Monte_carlo.circuit_delay_samples sampler ~n:2_000 rng in
  let s = Stats.summarize mc in
  let m = run_benchmark (spec_exn "c432") in
  let path3s =
    m.Methodology.prob_critical.Ranking.analysis.Path_analysis.confidence_point
  in
  Fmt.pr "  block-based: mean %.3f ps std %.3f ps 3-sigma %.3f ps (%.3f s)@."
    (Elmore.ps bb.Block_based.mean)
    (Elmore.ps bb.Block_based.std)
    (Elmore.ps bb.Block_based.confidence_point)
    bb.Block_based.runtime_s;
  Fmt.pr "  Monte-Carlo: mean %.3f ps std %.3f ps 3-sigma %.3f ps@."
    (Elmore.ps s.Stats.mean)
    (Elmore.ps s.Stats.std)
    (Elmore.ps (Stats.sigma_point mc 3.0));
  Fmt.pr "  path-based prob-critical 3-sigma: %.3f ps@." (Elmore.ps path3s);
  let pm = Path_max.statistical_max m in
  Fmt.pr "  correlated path-max (Clark over %d paths): mean %.3f ps std \
          %.3f ps 3-sigma %.3f ps@."
    pm.Path_max.paths_used (Elmore.ps pm.Path_max.mean)
    (Elmore.ps pm.Path_max.std)
    (Elmore.ps pm.Path_max.confidence_point);
  let fc = Full_chip.analyze circuit in
  Fmt.pr "  independence-assuming full-chip: mean %.3f ps std %.3f ps \
          3-sigma %.3f ps@."
    (Elmore.ps fc.Full_chip.mean)
    (Elmore.ps fc.Full_chip.std)
    (Elmore.ps fc.Full_chip.confidence_point);
  Fmt.pr "  (neglecting correlations collapses the spread — the paper's \
          critique of its refs [2,3,8], quantified)@." 

(* ------------------------------------------------------------------ *)
(* Ablation: non-Gaussian inter-die distributions.                     *)

let shapes () =
  section "Ablation: inter-die distribution shape (c432 critical path)";
  let circuit, placement = Iscas85.build_placed (spec_exn "c432") in
  let sta = Sta.analyze circuit in
  Fmt.pr "  %-12s %10s %10s %12s %12s@." "shape" "mean(ps)" "sigma(ps)"
    "3sig pt(ps)" "q99.99(ps)";
  List.iter
    (fun shape ->
      let config = Config.with_inter_shape Config.default shape in
      let ctx = Path_analysis.context config sta.Sta.graph placement in
      let a = Path_analysis.analyze ctx sta.Sta.critical_path in
      Fmt.pr "  %-12s %10.3f %10.3f %12.3f %12.3f@."
        (Ssta_prob.Shape.name shape)
        (Elmore.ps a.Path_analysis.mean)
        (Elmore.ps a.Path_analysis.std)
        (Elmore.ps a.Path_analysis.confidence_point)
        (Elmore.ps (Pdf.quantile a.Path_analysis.total_pdf 0.9999)))
    Ssta_prob.Shape.all;
  Fmt.pr "  (moments match by construction; bounded shapes trim the \
          extreme tail — the numeric engine is not Gaussian-bound)@."

(* ------------------------------------------------------------------ *)
(* Ablation: placement-aware interconnect loading.                     *)

let wires () =
  section "Ablation: fixed wire cap vs placement-aware loading (c432)";
  let circuit, placement = Iscas85.build_placed (spec_exn "c432") in
  let plain = Methodology.run ~placement circuit in
  let wired =
    Methodology.run ~placement ~wire:Ssta_tech.Wire.default circuit
  in
  let line label (m : Methodology.t) =
    Fmt.pr "  %-18s det %9.3f ps  3sig %9.3f ps  paths %d@." label
      (Elmore.ps m.Methodology.sta.Sta.critical_delay)
      (Elmore.ps
         m.Methodology.prob_critical.Ranking.analysis
           .Path_analysis.confidence_point)
      (Methodology.num_critical_paths m)
  in
  line "fixed 1 fF" plain;
  line "placement-aware" wired

(* ------------------------------------------------------------------ *)
(* Yield and criticality (the paper's motivation, quantified).         *)

let yield_criticality () =
  section "Yield and criticality (c432)";
  let _, placement = Iscas85.build_placed (spec_exn "c432") in
  let m = run_benchmark (spec_exn "c432") in
  let d = m.Methodology.det_critical in
  let sampler =
    Monte_carlo.sampler Config.default m.Methodology.sta.Sta.graph placement
  in
  let rng = Rng.create 31415 in
  let samples = Monte_carlo.circuit_delay_samples sampler ~n:2_000 rng in
  List.iter
    (fun target ->
      let clock =
        Yield.clock_for_yield
          m.Methodology.prob_critical.Ranking.analysis.Path_analysis.total_pdf
          ~yield:target
      in
      Fmt.pr "  clock for %6.2f%% yield: %9.3f ps | MC yield %.4f | \
              worst-case overdesign +%.1f%%@."
        (target *. 100.0) (Elmore.ps clock)
        (Yield.of_samples samples ~clock)
        ((d.Path_analysis.worst_case -. clock) /. clock *. 100.0))
    [ 0.90; 0.99; 0.9987 ];
  let paths =
    Array.to_list m.Methodology.ranked
    |> List.filteri (fun i _ -> i < 8)
    |> List.map (fun r -> r.Ranking.analysis.Path_analysis.path)
  in
  let crit = Criticality.estimate sampler ~n:2_000 rng paths in
  Fmt.pr "  criticality of the top %d paths (entropy %.3f):" (List.length paths)
    crit.Criticality.entropy;
  Array.iter (fun p -> Fmt.pr " %.3f" p) crit.Criticality.probabilities;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Dual-Vt leakage optimization (the ref [13] application).            *)

let dual_vt () =
  section "Dual-Vt leakage optimization under a 3-sigma timing target (c432)";
  let circuit, placement = Iscas85.build_placed (spec_exn "c432") in
  let m = run_benchmark (spec_exn "c432") in
  let base3 =
    m.Methodology.prob_critical.Ranking.analysis.Path_analysis
    .confidence_point
  in
  List.iter
    (fun headroom ->
      let target = (1.0 +. headroom) *. base3 in
      let r = Methodology.run ~placement circuit in
      ignore r;
      let d = Dual_vt.optimize ~placement ~target circuit in
      Fmt.pr "  +%2.0f%% timing headroom: %3d/%3d gates high-Vt, leakage \
              -%.1f%%, 3-sigma %.3f ps (target %.3f)%s@."
        (headroom *. 100.0) d.Dual_vt.high_count d.Dual_vt.gate_count
        ((d.Dual_vt.leakage_all_low -. d.Dual_vt.leakage_final)
        /. d.Dual_vt.leakage_all_low *. 100.0)
        (Elmore.ps d.Dual_vt.sigma3_final)
        (Elmore.ps target)
        (if d.Dual_vt.met then "" else " [NOT MET]"))
    [ 0.02; 0.05; 0.10 ]

(* ------------------------------------------------------------------ *)
(* Sequential: pipelined multiplier clock-period study.                *)

let pipeline () =
  section "Sequential: statistical clock period of the pipelined c6288 \
           (16x16 multiplier)";
  let comb =
    Ssta_circuit.Generators.array_multiplier ~name:"mult16" ~bits:16 ()
  in
  let config =
    { (Config.with_quality Config.default ~intra:60 ~inter:24) with
      Config.max_paths = 300 }
  in
  let baseline =
    Clocking.analyze ~config (Ssta_circuit.Sequential.of_netlist comb)
  in
  Fmt.pr "  %6s %10s %12s %12s %14s %9s@." "stages" "registers" "det clk(ps)"
    "3sig clk(ps)" "worst clk(ps)" "speedup";
  List.iter
    (fun stages ->
      let s = Ssta_circuit.Sequential.pipeline ~stages comb in
      let s, _ = Clocking.fix_hold s in
      let c = Clocking.analyze ~config s in
      Fmt.pr "  %6d %10d %12.1f %12.1f %14.1f %8.2fx@." stages
        (Ssta_circuit.Sequential.num_registers s)
        (Elmore.ps c.Clocking.det_min_clock)
        (Elmore.ps c.Clocking.stat_min_clock)
        (Elmore.ps c.Clocking.worst_case_clock)
        (Clocking.speedup ~baseline c))
    [ 1; 2; 4; 8 ];
  Fmt.pr "  (hold violations of the register chains repaired by buffer \
          insertion; corner sign-off overdesigns every pipeline by the \
          paper's ~55%%)@."

(* ------------------------------------------------------------------ *)
(* Parallel scaling: the whole methodology at several worker counts.   *)

(* Wall-clock and speedup per benchmark at jobs in {1, 2, 4, 8}, with a
   byte-identity check of the deterministic JSON report across worker
   counts, written to BENCH_parallel.json.  Speedups are honest numbers
   for the host this ran on: on a single-core machine every speedup is
   ~1.0 by construction (extra domains just time-share the core). *)
let parallel_jobs = [ 1; 2; 4; 8 ]

let parallel () =
  section
    (Printf.sprintf
       "Parallel scaling at jobs in {1, 2, 4, 8} (host: %d core(s))"
       (Pool.default_jobs ()));
  let max_paths = 2000 in
  Fmt.pr "  %-7s" "name";
  List.iter (fun j -> Fmt.pr " %8s" (Printf.sprintf "j=%d (s)" j))
    parallel_jobs;
  Fmt.pr " %8s %13s@." "speedup4" "deterministic";
  let rows =
    List.map
      (fun (spec : Iscas85.spec) ->
        let circuit, placement = Iscas85.build_placed spec in
        let config =
          Config.with_confidence Config.default
            spec.Iscas85.paper.Iscas85.confidence
        in
        let config = { config with Config.max_paths } in
        let runs =
          List.map
            (fun jobs ->
              Pool.with_pool ~jobs (fun pool ->
                  let t0 = Unix.gettimeofday () in
                  let m = Methodology.run ~config ~placement ~pool circuit in
                  let wall = Unix.gettimeofday () -. t0 in
                  (jobs, wall, Report.json_report m)))
            parallel_jobs
        in
        let _, wall1, report1 = List.hd runs in
        let deterministic =
          List.for_all (fun (_, _, r) -> String.equal r report1) runs
        in
        let speedup wall = if wall > 0.0 then wall1 /. wall else 1.0 in
        Fmt.pr "  %-7s" spec.Iscas85.name;
        List.iter (fun (_, w, _) -> Fmt.pr " %8.3f" w) runs;
        let speedup4 =
          match List.find_opt (fun (j, _, _) -> j = 4) runs with
          | Some (_, w, _) -> speedup w
          | None -> 1.0
        in
        Fmt.pr " %7.2fx %13s@." speedup4
          (if deterministic then "yes" else "NO");
        (spec.Iscas85.name, runs, deterministic))
      Iscas85.all
  in
  let oc = open_out "BENCH_parallel.json" in
  let out fmt = Printf.ksprintf (output_string oc) fmt in
  out "{\"host_cores\":%d,\"max_paths\":%d,\"benchmarks\":[\n"
    (Pool.default_jobs ()) max_paths;
  List.iteri
    (fun i (name, runs, deterministic) ->
      let _, wall1, _ = List.hd runs in
      out "  {\"name\":\"%s\",\"deterministic\":%b,\"runs\":[%s]}%s\n" name
        deterministic
        (String.concat ","
           (List.map
              (fun (j, w, _) ->
                Printf.sprintf
                  "{\"jobs\":%d,\"wall_s\":%.4f,\"speedup\":%.3f}" j w
                  (if w > 0.0 then wall1 /. w else 1.0))
              runs))
        (if i = List.length rows - 1 then "" else ",");
      ())
    rows;
  out "]}\n";
  close_out oc;
  Fmt.pr "  wrote BENCH_parallel.json@.";
  if List.exists (fun (_, _, d) -> not d) rows then
    failwith "parallel runs diverged from the sequential report"

(* ------------------------------------------------------------------ *)
(* Hot path: the inter-kernel cache A/B harness.                       *)

(* jobs=1 walls recorded in BENCH_parallel.json by the PR that added the
   parallel harness — the fixed baseline this and future perf PRs
   measure against (host-dependent; same single-core class of machine). *)
let seed_walls =
  [ ("c432", 0.0236); ("c499", 3.8724); ("c880", 0.0393);
    ("c1355", 6.7144); ("c1908", 0.1969); ("c2670", 0.3463);
    ("c3540", 0.2768); ("c5315", 0.0409); ("c6288", 8.5582);
    ("c7552", 0.0633) ]

let hotpath_only : string list ref = ref []
let hotpath_assert = ref false

(* A/B of the scale-covariant inter-kernel cache at jobs=1: wall clock
   cached vs uncached, cache traffic (from the health counters), one
   cold-vs-warm kernel timing, the worst per-path statistic divergence,
   and the speedup against the recorded seed walls.  Written to
   BENCH_hotpath.json as the perf trajectory artifact. *)
let hotpath () =
  section "Hot path: scale-covariant inter-kernel cache A/B (jobs=1)";
  let max_paths = 2000 in
  let specs =
    match !hotpath_only with
    | [] -> Iscas85.all
    | names -> List.filter_map Iscas85.by_name names
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Fmt.pr "  %-7s %11s %11s %8s %8s %9s %11s@." "name" "uncached(s)"
    "cached(s)" "speedup" "hitrate" "vs-seed" "maxreldiff";
  let rows =
    List.map
      (fun (spec : Iscas85.spec) ->
        let name = spec.Iscas85.name in
        let circuit, placement = Iscas85.build_placed spec in
        let config =
          Config.with_confidence Config.default
            spec.Iscas85.paper.Iscas85.confidence
        in
        let config = { config with Config.max_paths } in
        let timed_run cfg =
          let t0 = Unix.gettimeofday () in
          let m = Methodology.run ~config:cfg ~placement circuit in
          (m, Unix.gettimeofday () -. t0)
        in
        let m_off, wall_off =
          timed_run { config with Config.inter_cache = false }
        in
        let m_on, wall_on =
          timed_run { config with Config.inter_cache = true }
        in
        (* Per-path statistics must agree within 1e-9 relative.  Paths
           are matched by det_rank (set by the cache-independent
           enumeration): confidence ties may order ranked arrays
           differently under 1e-12-level perturbations. *)
        let by_det = Hashtbl.create 256 in
        Array.iter
          (fun (r : Ranking.ranked) ->
            Hashtbl.replace by_det r.Ranking.det_rank r.Ranking.analysis)
          m_off.Methodology.ranked;
        let max_rel = ref 0.0 in
        let rel a b =
          Float.abs (a -. b)
          /. Float.max 1e-300 (Float.max (Float.abs a) (Float.abs b))
        in
        Array.iter
          (fun (r : Ranking.ranked) ->
            match Hashtbl.find_opt by_det r.Ranking.det_rank with
            | None -> fail "%s: ranked path sets differ across A/B" name
            | Some off ->
                let on = r.Ranking.analysis in
                List.iter
                  (fun (a, b) -> max_rel := Float.max !max_rel (rel a b))
                  [ (on.Path_analysis.mean, off.Path_analysis.mean);
                    (on.Path_analysis.std, off.Path_analysis.std);
                    (on.Path_analysis.confidence_point,
                     off.Path_analysis.confidence_point) ])
          m_on.Methodology.ranked;
        let counter n =
          Ssta_runtime.Health.counter m_on.Methodology.health n
        in
        let lookups = counter "inter-cache-lookups" in
        let distinct = counter "inter-cache-distinct" in
        let hits = counter "inter-cache-hits" in
        let hit_rate =
          if lookups > 0 then float_of_int hits /. float_of_int lookups
          else 0.0
        in
        (* One cold (uncached) vs warm (cache hit) kernel call on the
           critical path's coefficients. *)
        let sta = m_on.Methodology.sta in
        let tables = Inter.tables config in
        let coeffs =
          Ssta_correlation.Path_coeffs.of_path sta.Sta.graph placement
            (Config.layers_for config placement)
            sta.Sta.critical_path
        in
        let time_us f =
          let t0 = Unix.gettimeofday () in
          ignore (f ());
          (Unix.gettimeofday () -. t0) *. 1e6
        in
        let cold_us = time_us (fun () -> Inter.of_coeffs tables coeffs) in
        let cache = Inter.cache_create tables in
        ignore (Inter.of_coeffs ~cache tables coeffs);
        let warm_us = time_us (fun () -> Inter.of_coeffs ~cache tables coeffs) in
        let speedup = if wall_on > 0.0 then wall_off /. wall_on else 1.0 in
        let seed = List.assoc_opt name seed_walls in
        let vs_seed =
          match seed with
          | Some s when wall_on > 0.0 -> s /. wall_on
          | _ -> 1.0
        in
        if !max_rel > 1e-9 then
          fail "%s: cached statistics diverge by %.3g relative (tol 1e-9)"
            name !max_rel;
        if !hotpath_assert then begin
          if lookups > 0 && hits = 0 then
            fail "%s: cache hit rate is zero" name;
          if wall_on > wall_off *. 1.05 then
            fail "%s: cached run slower than uncached (%.3fs vs %.3fs)" name
              wall_on wall_off
        end;
        Fmt.pr "  %-7s %11.3f %11.3f %7.2fx %7.1f%% %8.2fx %11.2e@." name
          wall_off wall_on speedup (hit_rate *. 100.0) vs_seed !max_rel;
        (name, wall_off, wall_on, speedup, seed, vs_seed, lookups, distinct,
         hits, hit_rate, cold_us, warm_us, !max_rel))
      specs
  in
  let oc = open_out "BENCH_hotpath.json" in
  let out fmt = Printf.ksprintf (output_string oc) fmt in
  out "{\"host_cores\":%d,\"max_paths\":%d,\"benchmarks\":[\n"
    (Pool.default_jobs ()) max_paths;
  List.iteri
    (fun i
         (name, wall_off, wall_on, speedup, seed, vs_seed, lookups, distinct,
          hits, hit_rate, cold_us, warm_us, max_rel) ->
      out
        "  {\"name\":\"%s\",\"wall_uncached_s\":%.4f,\"wall_cached_s\":%.4f,\
         \"speedup\":%.3f,%s\"speedup_vs_seed\":%.3f,\
         \"cache\":{\"lookups\":%d,\"distinct\":%d,\"hits\":%d,\
         \"hit_rate\":%.4f},\"kernel_cold_us\":%.1f,\"kernel_warm_us\":%.1f,\
         \"max_rel_diff\":%.3e}%s\n"
        name wall_off wall_on speedup
        (match seed with
        | Some s -> Printf.sprintf "\"seed_wall_s\":%.4f," s
        | None -> "")
        vs_seed lookups distinct hits hit_rate cold_us warm_us max_rel
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "]}\n";
  close_out oc;
  Fmt.pr "  wrote BENCH_hotpath.json@.";
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Fmt.epr "  FAIL: %s@." f) fs;
      failwith "hotpath assertions failed"

(* ------------------------------------------------------------------ *)
(* Screening: the affine path-screener A/B harness.                    *)

(* A/B of the affine suffix-bound screener at jobs=1: near-critical
   enumeration with and without pruning must return byte-identical
   records (the screener's proof obligation — pruning only skips
   provably sub-threshold subtrees), while the pruned run saves frontier
   work.  Written to BENCH_screening.json as the screening artifact. *)
let render_enumeration (e : Ssta_timing.Paths.enumeration) =
  let module Paths = Ssta_timing.Paths in
  let b = Buffer.create 4096 in
  List.iter
    (fun (p : Paths.path) ->
      Buffer.add_string b (Printf.sprintf "%.17g|" p.Paths.delay);
      Array.iter
        (fun id ->
          Buffer.add_string b (string_of_int id);
          Buffer.add_char b ',')
        p.Paths.nodes;
      Buffer.add_char b '\n')
    e.Paths.paths;
  Buffer.add_string b
    (Printf.sprintf "explored=%d truncated=%b deadline=%b" e.Paths.explored
       e.Paths.truncated e.Paths.deadline_hit);
  Buffer.contents b

let screening () =
  section "Screening: affine suffix-bound path pruning A/B (jobs=1)";
  let module Affine = Ssta_check.Affine in
  let module Paths = Ssta_timing.Paths in
  let max_paths = 2000 in
  let specs =
    match !hotpath_only with
    | [] -> Iscas85.all
    | names -> List.filter_map Iscas85.by_name names
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Fmt.pr "  %-7s %7s %7s %9s %12s %11s %6s %5s@." "name" "nodes" "pruned"
    "fraction" "unpruned(s)" "pruned(s)" "paths" "equal";
  let rows =
    List.map
      (fun (spec : Iscas85.spec) ->
        let name = spec.Iscas85.name in
        let circuit, placement = Iscas85.build_placed spec in
        let config =
          Config.with_confidence Config.default
            spec.Iscas85.paper.Iscas85.confidence
        in
        let config = { config with Config.max_paths } in
        let sta = Sta.analyze circuit in
        let ctx = Path_analysis.context config sta.Sta.graph placement in
        let det = Path_analysis.analyze ctx sta.Sta.critical_path in
        let slack = config.Config.confidence *. det.Path_analysis.std in
        let aff =
          match Affine.compute config sta.Sta.graph with
          | Ok aff -> aff
          | Error msg -> Fmt.failwith "%s: affine analysis failed: %s" name msg
        in
        let sc = Affine.screen aff sta ~slack in
        let time_run f =
          let t0 = Unix.gettimeofday () in
          let e = f () in
          (e, Unix.gettimeofday () -. t0)
        in
        let base, wall_base =
          time_run (fun () -> Sta.near_critical ~max_paths sta ~slack)
        in
        let pruned, wall_pruned =
          time_run (fun () ->
              Sta.near_critical ~max_paths ~prune:(Affine.prune_hook sc) sta
                ~slack)
        in
        let equal =
          String.equal (render_enumeration base) (render_enumeration pruned)
        in
        let fraction =
          if sc.Affine.nodes_visited > 0 then
            float_of_int sc.Affine.nodes_pruned
            /. float_of_int sc.Affine.nodes_visited
          else 0.0
        in
        if not equal then
          fail "%s: pruned enumeration diverges from the unpruned one" name;
        if !hotpath_assert && fraction <= 0.0 then
          fail "%s: screener pruned nothing (fraction %.4f)" name fraction;
        Fmt.pr "  %-7s %7d %7d %8.1f%% %12.3f %11.3f %6d %5s@." name
          sc.Affine.nodes_visited sc.Affine.nodes_pruned (fraction *. 100.0)
          wall_base wall_pruned
          (List.length base.Paths.paths)
          (if equal then "yes" else "NO");
        (name, sc.Affine.nodes_visited, sc.Affine.nodes_pruned, fraction,
         wall_base, wall_pruned, List.length base.Paths.paths, equal))
      specs
  in
  let oc = open_out "BENCH_screening.json" in
  let out fmt = Printf.ksprintf (output_string oc) fmt in
  out "{\"max_paths\":%d,\"benchmarks\":[\n" max_paths;
  List.iteri
    (fun i (name, nodes, pruned, fraction, wall_base, wall_pruned, paths,
            equal) ->
      out
        "  {\"name\":\"%s\",\"nodes\":%d,\"pruned\":%d,\"fraction\":%.4f,\
         \"wall_unpruned_s\":%.4f,\"wall_pruned_s\":%.4f,\"paths\":%d,\
         \"equal\":%b}%s\n"
        name nodes pruned fraction wall_base wall_pruned paths equal
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "]}\n";
  close_out oc;
  Fmt.pr "  wrote BENCH_screening.json@.";
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Fmt.epr "  FAIL: %s@." f) fs;
      failwith "screening assertions failed"

(* ------------------------------------------------------------------ *)
(* Incremental: edit-to-answer latency vs a full rerun.                 *)

(* A single-gate resize (drive 1.25) applied to a warm incremental
   image (Ssta_check.Impact): time the baseline init, the incremental
   re-analysis, and a warm-backed from-scratch run of the same edited
   design, and byte-compare the two reports.  The edited gate is the
   one whose dirty set ({g} + fanins) covers the fewest enumerated
   near-critical paths — the representative local ECO (fixing a buffer
   off the critical region), deterministic per circuit.  Timings are
   the min of two runs.  Written to BENCH_incremental.json as the
   edit-to-answer artifact. *)
let incremental () =
  section "Incremental: dependence-cone re-analysis after one edit (jobs=1)";
  let module Impact = Ssta_check.Impact in
  let module Netlist = Ssta_circuit.Netlist in
  let max_paths = 2000 in
  let specs =
    match !hotpath_only with
    | [] -> Iscas85.all
    | names -> List.filter_map Iscas85.by_name names
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Fmt.pr "  %-7s %8s %8s %8s %8s %6s %7s %7s %6s@." "name" "init(s)"
    "incr(s)" "full(s)" "speedup" "cone" "reused" "reanal" "equal";
  let rows =
    List.map
      (fun (spec : Iscas85.spec) ->
        let name = spec.Iscas85.name in
        let circuit, placement = Iscas85.build_placed spec in
        let config =
          Config.with_confidence Config.default
            spec.Iscas85.paper.Iscas85.confidence
        in
        let config = { config with Config.max_paths } in
        let d = Impact.design ~placement ~config circuit in
        let time f =
          let t0 = Unix.gettimeofday () in
          let v = f () in
          (v, Unix.gettimeofday () -. t0)
        in
        let or_fail = function
          | Ok v -> v
          | Error e ->
              Fmt.failwith "%s: %s" name
                (Ssta_runtime.Ssta_error.to_string e)
        in
        let (state, baseline), init_s =
          time (fun () -> or_fail (Impact.init d))
        in
        (* Least-covered gate: re-enumerate the near-critical paths of
           the baseline and pick the gate whose dirty set touches the
           fewest of them. *)
        let gate =
          let module Paths = Ssta_timing.Paths in
          let n = Netlist.num_nodes circuit in
          let count = Array.make n 0 in
          let e =
            Sta.near_critical ~max_paths baseline.Methodology.sta
              ~slack:baseline.Methodology.slack
          in
          List.iter
            (fun (p : Paths.path) ->
              Array.iter
                (fun id -> count.(id) <- count.(id) + 1)
                p.Paths.nodes)
            e.Paths.paths;
          let best = ref circuit.Netlist.num_inputs in
          let best_cost = ref max_int in
          for id = circuit.Netlist.num_inputs to n - 1 do
            let g = Netlist.gate_of circuit id in
            let cost =
              Array.fold_left
                (fun acc f -> acc + count.(f))
                count.(id) g.Netlist.fanins
            in
            if cost < !best_cost then begin
              best := id;
              best_cost := cost
            end
          done;
          Netlist.node_name circuit !best
        in
        let edit =
          or_fail
            (Ssta_circuit.Edit.parse_string_res
               (Printf.sprintf "resize %s 1.25" gate))
        in
        let _, probe_s =
          time (fun () -> or_fail (Impact.what_if state edit))
        in
        let o, commit_s =
          time (fun () -> or_fail (Impact.reanalyze state edit))
        in
        let incr_s = Float.min probe_s commit_s in
        let edited = Impact.design_of state in
        let m_scratch, full1_s =
          time (fun () -> or_fail (Impact.scratch edited))
        in
        let _, full2_s = time (fun () -> or_fail (Impact.scratch edited)) in
        let full_s = Float.min full1_s full2_s in
        let identical =
          String.equal
            (Report.json_report o.Impact.report)
            (Report.json_report m_scratch)
        in
        let speedup = if incr_s > 0.0 then full_s /. incr_s else 1.0 in
        if not identical then
          fail "%s: incremental report diverges from the from-scratch run"
            name;
        if !hotpath_assert && incr_s >= full_s then
          fail "%s: incremental (%.4fs) not faster than full rerun (%.4fs)"
            name incr_s full_s;
        Fmt.pr "  %-7s %8.3f %8.3f %8.3f %7.2fx %6d %7d %7d %6s@." name
          init_s incr_s full_s speedup o.Impact.cone.Impact.cone_nodes
          o.Impact.reused o.Impact.reanalyzed
          (if identical then "yes" else "NO");
        (name, gate, init_s, incr_s, full_s, speedup,
         o.Impact.cone.Impact.cone_nodes, o.Impact.invalidated,
         o.Impact.reused, o.Impact.reanalyzed, identical))
      specs
  in
  let oc = open_out "BENCH_incremental.json" in
  let out fmt = Printf.ksprintf (output_string oc) fmt in
  out
    "{\"max_paths\":%d,\"edit\":\"resize least-covered-gate 1.25\",\
     \"benchmarks\":[\n"
    max_paths;
  List.iteri
    (fun i
         (name, gate, init_s, incr_s, full_s, speedup, cone, invalidated,
          reused, reanalyzed, identical) ->
      out
        "  {\"name\":\"%s\",\"gate\":\"%s\",\"init_s\":%.4f,\
         \"incremental_s\":%.4f,\"full_s\":%.4f,\"speedup\":%.3f,\
         \"cone_nodes\":%d,\"invalidated\":%d,\"reused\":%d,\
         \"reanalyzed\":%d,\"identical\":%b}%s\n"
        name gate init_s incr_s full_s speedup cone invalidated reused
        reanalyzed identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "]}\n";
  close_out oc;
  Fmt.pr "  wrote BENCH_incremental.json@.";
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Fmt.epr "  FAIL: %s@." f) fs;
      failwith "incremental assertions failed"

(* ------------------------------------------------------------------ *)
(* Block crossover: path-based vs block-based wall clock.              *)

(* Path-based cost is enumeration-dominated (O(paths * Q^3) after the
   near-critical walk); the block engine visits every gate once.  This
   harness measures both walls per benchmark at the paper's settings and
   records where the one-pass engine wins, plus the statistical gap
   between the two answers.  Written to BENCH_blockcross.json. *)
let blockcross () =
  section "Block crossover: path-based vs block-based engine (jobs=1)";
  let module Block_engine = Ssta_block.Engine in
  let max_paths = 2000 in
  let specs =
    match !hotpath_only with
    | [] -> Iscas85.all
    | names -> List.filter_map Iscas85.by_name names
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Fmt.pr "  %-7s %6s %9s %10s %8s %10s %10s %6s@." "name" "gates" "path(s)"
    "block(s)" "speedup" "dmean" "dsigma" "wins";
  let rows =
    List.map
      (fun (spec : Iscas85.spec) ->
        let name = spec.Iscas85.name in
        let circuit, placement = Iscas85.build_placed spec in
        let config =
          Config.with_confidence Config.default
            spec.Iscas85.paper.Iscas85.confidence
        in
        let config = { config with Config.max_paths } in
        let t0 = Unix.gettimeofday () in
        let m = Methodology.run ~config ~placement circuit in
        let path_wall = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let r = Block_engine.analyze ~config ~placement circuit in
        let block_wall = Unix.gettimeofday () -. t1 in
        let pa = m.Methodology.prob_critical.Ranking.analysis in
        let path_mean = pa.Path_analysis.mean in
        let path_std = pa.Path_analysis.std in
        let rel_mean =
          Float.abs (r.Block_engine.mean -. path_mean) /. path_mean
        in
        let rel_std =
          Float.abs (r.Block_engine.std -. path_std) /. path_std
        in
        let speedup =
          if block_wall > 0.0 then path_wall /. block_wall else 1.0
        in
        let wins = block_wall < path_wall in
        (* The block mean upper-bounds the most-critical path's mean
           (the circuit max dominates every path), so the one-sided
           check is a soundness gate, the relative ones a quality
           gate. *)
        if !hotpath_assert then begin
          if r.Block_engine.mean < path_mean *. 0.98 then
            fail "%s: block mean %.4g below path mean %.4g" name
              r.Block_engine.mean path_mean;
          if rel_mean > 0.10 then
            fail "%s: block/path mean gap %.1f%% (tol 10%%)" name
              (rel_mean *. 100.0);
          if rel_std > 0.35 then
            fail "%s: block/path sigma gap %.1f%% (tol 35%%)" name
              (rel_std *. 100.0)
        end;
        Fmt.pr "  %-7s %6d %9.3f %10.4f %7.1fx %9.2f%% %9.2f%% %6s@." name
          r.Block_engine.num_gates path_wall block_wall speedup
          (rel_mean *. 100.0) (rel_std *. 100.0)
          (if wins then "yes" else "no");
        (name, r.Block_engine.num_gates, path_wall, block_wall, speedup,
         path_mean, path_std, pa.Path_analysis.confidence_point,
         r.Block_engine.mean, r.Block_engine.std,
         r.Block_engine.confidence_point, wins))
      specs
  in
  if !hotpath_assert
     && not (List.exists (fun (_, _, _, _, _, _, _, _, _, _, _, w) -> w) rows)
  then fail "no benchmark where the block engine beats the path engine";
  let oc = open_out "BENCH_blockcross.json" in
  let out fmt = Printf.ksprintf (output_string oc) fmt in
  out "{\"max_paths\":%d,\"max_policy\":\"clark\",\"benchmarks\":[\n" max_paths;
  List.iteri
    (fun i
         (name, gates, path_wall, block_wall, speedup, path_mean, path_std,
          path_conf, block_mean, block_std, block_conf, wins) ->
      out
        "  {\"name\":\"%s\",\"gates\":%d,\"path_wall_s\":%.4f,\
         \"block_wall_s\":%.4f,\"speedup\":%.3f,\
         \"path\":{\"mean_s\":%.6e,\"std_s\":%.6e,\
         \"confidence_point_s\":%.6e},\
         \"block\":{\"mean_s\":%.6e,\"std_s\":%.6e,\
         \"confidence_point_s\":%.6e},\"block_wins\":%b}%s\n"
        name gates path_wall block_wall speedup path_mean path_std path_conf
        block_mean block_std block_conf wins
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "]}\n";
  close_out oc;
  Fmt.pr "  wrote BENCH_blockcross.json@.";
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Fmt.epr "  FAIL: %s@." f) fs;
      failwith "blockcross assertions failed"

(* ------------------------------------------------------------------ *)
(* Dimensional bench: the cartesian scaling harness.                    *)

(* One cell of the {benchmark x quality x jobs x inter-cache x engine}
   grid.  Walls are the min of [dim_repeats] runs (suppressing GC and
   scheduler noise — standard for wall-clock artifacts); minor words are
   taken from the fastest run (allocation volume is deterministic, the
   timing is not). *)
type dim_cell = {
  c_engine : string;  (* "path" | "block" *)
  c_q : int;  (* quality_intra; quality_inter = q/2 *)
  c_jobs : int;  (* 0 for the block engine (takes no pool) *)
  c_cache : bool;
  c_max_paths : int;
  c_paths : int;  (* ranked path count (0 for block) *)
  c_wall : float;
  c_minor : float;  (* Gc.minor_words delta of the fastest run *)
  c_counters : (string * int) list;  (* health counters ([] for block) *)
  c_report : string;  (* deterministic JSON report ("" for block) *)
}

let dim_repeats = 2
let dim_qs = [ 50; 100 ]
let dim_jobs = [ 1; 2 ]
let dim_q_sweep = 200  (* third point of the wall-vs-Q fit *)
let dim_paths_sweep = [ 500; 1000 ]  (* 2000 is the grid's base cap *)

let dim_counter_names =
  [ "inter-cache-lookups"; "inter-cache-hits"; "inter-cache-distinct";
    "arena-buffers-created"; "arena-bytes-reused"; "arena-peak-bytes" ]

(* Cached jobs=1 walls recorded in BENCH_hotpath.json by the PR that
   added the inter-kernel cache — the fixed baseline the strict floors
   regress against.  SSTA_DIM_STRICT=1 turns the >= 1.5x floors into
   hard failures; without it the speedups are recorded but not asserted
   (CI walls are machine-dependent). *)
let dim_seed_cached =
  [ ("c499", 0.2740); ("c1355", 0.6022); ("c6288", 1.7363) ]

let dim_strict_floor = 1.5

let dim_strict () =
  match Sys.getenv_opt "SSTA_DIM_STRICT" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* Least-squares slope of ln(wall) against ln(x): the empirical scaling
   exponent of one sweep axis. *)
let dim_fit_exponent points =
  let pts = List.filter (fun (x, w) -> x > 0 && w > 0.0) points in
  match pts with
  | [] | [ _ ] -> nan
  | _ ->
      let n = float_of_int (List.length pts) in
      let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
      List.iter
        (fun (x, w) ->
          let lx = log (float_of_int x) and ly = log w in
          sx := !sx +. lx;
          sy := !sy +. ly;
          sxx := !sxx +. (lx *. lx);
          sxy := !sxy +. (lx *. ly))
        pts;
      let d = (n *. !sxx) -. (!sx *. !sx) in
      if Float.abs d < 1e-12 then nan
      else ((n *. !sxy) -. (!sx *. !sy)) /. d

let dim_config ~confidence ~q ~cache ~max_paths =
  let config = Config.with_confidence Config.default confidence in
  let config = Config.with_quality config ~intra:q ~inter:(q / 2) in
  { config with Config.max_paths; Config.inter_cache = cache }

let dim_path_cell ~circuit ~placement ~confidence ~q ~jobs ~cache ~max_paths =
  let config = dim_config ~confidence ~q ~cache ~max_paths in
  let best_wall = ref infinity and best_minor = ref 0.0 in
  let last = ref None in
  for _ = 1 to dim_repeats do
    (* Isolate cells from each other's garbage: without this the dead
       major heap left by earlier (uncached, high-Q) cells slows later
       ones by 20-40%, which poisons the exponent fits.  A full major
       cycle (not a compaction) keeps the heap pages mapped, so the
       timed region does not pay re-growth faults. *)
    Gc.full_major ();
    Pool.with_pool ~jobs (fun pool ->
        let mw0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        let m = Methodology.run ~config ~placement ~pool circuit in
        let wall = Unix.gettimeofday () -. t0 in
        let minor = Gc.minor_words () -. mw0 in
        if wall < !best_wall then begin
          best_wall := wall;
          best_minor := minor
        end;
        last := Some m)
  done;
  let m = match !last with Some m -> m | None -> assert false in
  let counters =
    List.map
      (fun n -> (n, Ssta_runtime.Health.counter m.Methodology.health n))
      dim_counter_names
  in
  { c_engine = "path"; c_q = q; c_jobs = jobs; c_cache = cache;
    c_max_paths = max_paths; c_paths = Methodology.num_critical_paths m;
    c_wall = !best_wall; c_minor = !best_minor; c_counters = counters;
    c_report = Report.json_report m }

let dim_block_cell ~circuit ~placement ~confidence ~q ~cache ~max_paths =
  let config = dim_config ~confidence ~q ~cache ~max_paths in
  let best_wall = ref infinity and best_minor = ref 0.0 in
  for _ = 1 to dim_repeats do
    Gc.full_major ();
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let r = Ssta_block.Engine.analyze ~config ~placement circuit in
    let wall = Unix.gettimeofday () -. t0 in
    let minor = Gc.minor_words () -. mw0 in
    ignore r;
    if wall < !best_wall then begin
      best_wall := wall;
      best_minor := minor
    end
  done;
  { c_engine = "block"; c_q = q; c_jobs = 0; c_cache = cache;
    c_max_paths = max_paths; c_paths = 0; c_wall = !best_wall;
    c_minor = !best_minor; c_counters = []; c_report = "" }

(* The full cartesian sweep: {Q x jobs x cache} for the path engine and
   {Q x cache} for the block engine (which takes no pool), plus the
   extra Q and max-paths points that anchor the log-log exponent fits.
   Emits BENCH_dim.json with a deterministic schema (fixed key set and
   order; only the measured values vary) so CI can regress it. *)
let dim () =
  let strict = dim_strict () in
  section
    (Printf.sprintf
       "Dimensional bench: {benchmark x Q x jobs x cache x engine} \
        (host: %d core(s), repeats: %d, strict floors: %s)"
       (Pool.default_jobs ()) dim_repeats (if strict then "on" else "off"));
  let max_paths = 2000 in
  let specs =
    match !hotpath_only with
    | [] -> Iscas85.all
    | names -> List.filter_map Iscas85.by_name names
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  Fmt.pr "  %-7s %-6s %4s %4s %6s %6s %6s %9s %12s@." "name" "engine" "Q"
    "jobs" "cache" "paths" "cap" "wall(s)" "minor-words";
  let rows =
    List.map
      (fun (spec : Iscas85.spec) ->
        let name = spec.Iscas85.name in
        let circuit, placement = Iscas85.build_placed spec in
        let confidence = spec.Iscas85.paper.Iscas85.confidence in
        let pr_cell c =
          Fmt.pr "  %-7s %-6s %4d %4s %6s %6d %6d %9.4f %12.3e@." name
            c.c_engine c.c_q
            (if c.c_jobs = 0 then "-" else string_of_int c.c_jobs)
            (if c.c_cache then "on" else "off")
            c.c_paths c.c_max_paths c.c_wall c.c_minor;
          c
        in
        (* base path grid *)
        let base =
          List.concat_map
            (fun q ->
              List.concat_map
                (fun jobs ->
                  List.map
                    (fun cache ->
                      pr_cell
                        (dim_path_cell ~circuit ~placement ~confidence ~q
                           ~jobs ~cache ~max_paths))
                    [ false; true ])
                dim_jobs)
            dim_qs
        in
        (* exponent-fit anchors: one extra Q point, two path caps *)
        let anchors =
          let q_anchor =
            pr_cell
              (dim_path_cell ~circuit ~placement ~confidence ~q:dim_q_sweep
                 ~jobs:1 ~cache:true ~max_paths)
          in
          let cap_anchors =
            List.map
              (fun cap ->
                pr_cell
                  (dim_path_cell ~circuit ~placement ~confidence ~q:100
                     ~jobs:1 ~cache:true ~max_paths:cap))
              dim_paths_sweep
          in
          q_anchor :: cap_anchors
        in
        (* block engine: no pool dimension *)
        let block =
          List.concat_map
            (fun q ->
              List.map
                (fun cache ->
                  pr_cell
                    (dim_block_cell ~circuit ~placement ~confidence ~q ~cache
                       ~max_paths))
                [ false; true ])
            dim_qs
        in
        let grid = base @ anchors @ block in
        let find ~engine ~q ~jobs ~cache ~cap =
          List.find_opt
            (fun c ->
              String.equal c.c_engine engine
              && c.c_q = q && c.c_jobs = jobs && c.c_cache = cache
              && c.c_max_paths = cap)
            grid
        in
        (* --- log-log exponent fits ------------------------------- *)
        let q_points =
          List.filter_map
            (fun q ->
              Option.map
                (fun c -> (q, c.c_wall))
                (find ~engine:"path" ~q ~jobs:1 ~cache:true ~cap:max_paths))
            (dim_qs @ [ dim_q_sweep ])
        in
        let paths_points =
          List.filter_map
            (fun cap ->
              Option.map
                (fun c -> (c.c_paths, c.c_wall))
                (find ~engine:"path" ~q:100 ~jobs:1 ~cache:true ~cap))
            (dim_paths_sweep @ [ max_paths ])
        in
        let paths_increasing =
          let xs = List.map fst paths_points in
          List.length xs >= 2
          && List.for_all2 (fun a b -> a < b)
               (List.filteri (fun i _ -> i < List.length xs - 1) xs)
               (List.tl xs)
        in
        let q_exp = dim_fit_exponent q_points in
        let paths_exp =
          if paths_increasing then dim_fit_exponent paths_points else nan
        in
        Fmt.pr "  %-7s fits: wall ~ Q^%.2f%s@." name q_exp
          (if Float.is_nan paths_exp then
             " (path-count axis saturated; paths exponent skipped)"
           else Printf.sprintf ", wall ~ paths^%.2f" paths_exp);
        (* --- relative invariants (always checked with --assert) --- *)
        if !hotpath_assert then begin
          (* cache on must not lose to cache off at the same settings *)
          List.iter
            (fun q ->
              List.iter
                (fun jobs ->
                  match
                    ( find ~engine:"path" ~q ~jobs ~cache:false ~cap:max_paths,
                      find ~engine:"path" ~q ~jobs ~cache:true ~cap:max_paths )
                  with
                  | Some off, Some on when off.c_wall >= 0.05 ->
                      if on.c_wall > off.c_wall *. 1.10 then
                        fail
                          "%s: Q=%d jobs=%d cached wall %.4fs slower than \
                           uncached %.4fs"
                          name q jobs on.c_wall off.c_wall
                  | _ -> ())
                dim_jobs)
            dim_qs;
          (* the arena must actually be exercised *)
          List.iter
            (fun c ->
              if
                String.equal c.c_engine "path"
                && List.assoc "arena-peak-bytes" c.c_counters = 0
              then
                fail "%s: Q=%d jobs=%d cache=%b reports no arena traffic"
                  name c.c_q c.c_jobs c.c_cache)
            grid;
          (* the deterministic report must not depend on the jobs axis *)
          List.iter
            (fun q ->
              List.iter
                (fun cache ->
                  match
                    ( find ~engine:"path" ~q ~jobs:1 ~cache ~cap:max_paths,
                      find ~engine:"path" ~q ~jobs:2 ~cache ~cap:max_paths )
                  with
                  | Some a, Some b when not (String.equal a.c_report b.c_report)
                    ->
                      fail "%s: Q=%d cache=%b report differs between jobs 1 \
                            and 2"
                        name q cache
                  | _ -> ())
                [ false; true ])
            dim_qs;
          (* exponents must stay in sane bands when the walls are large
             enough to measure *)
          if
            List.for_all (fun (_, w) -> w >= 0.05) q_points
            && not (Float.is_nan q_exp)
            && (q_exp < -0.2 || q_exp > 4.5)
          then
            (* Lower bound near zero, not a positive power: circuits
               whose per-path cost is coefficient-dominated (c6288's
               long multiplier paths) legitimately scale almost flat in
               Q once the inter cache is warm. *)
            fail "%s: wall-vs-Q exponent %.2f outside [-0.2, 4.5]" name q_exp;
          if
            paths_increasing
            && List.for_all (fun (_, w) -> w >= 0.05) paths_points
            && not (Float.is_nan paths_exp)
            && (paths_exp < 0.2 || paths_exp > 2.2)
          then
            fail "%s: wall-vs-paths exponent %.2f outside [0.2, 2.2]" name
              paths_exp
        end;
        (* --- strict absolute floors (opt-in: host-dependent) ------ *)
        let vs_seed =
          match
            ( List.assoc_opt name dim_seed_cached,
              find ~engine:"path" ~q:100 ~jobs:1 ~cache:true ~cap:max_paths )
          with
          | Some seed, Some c when c.c_wall > 0.0 ->
              let speedup = seed /. c.c_wall in
              Fmt.pr "  %-7s vs seed cached wall %.4fs: %.2fx@." name seed
                speedup;
              if strict && !hotpath_assert && speedup < dim_strict_floor then
                fail
                  "%s: jobs=1 cached wall %.4fs only %.2fx over the seed \
                   %.4fs (floor %.1fx)"
                  name c.c_wall speedup seed dim_strict_floor;
              Some (seed, c.c_wall, speedup)
          | _ -> None
        in
        (name, grid, q_points, q_exp, paths_points, paths_exp, vs_seed))
      specs
  in
  let oc = open_out "BENCH_dim.json" in
  let out fmt = Printf.ksprintf (output_string oc) fmt in
  out
    "{\"schema\":\"bench-dim/1\",\"host_cores\":%d,\"repeats\":%d,\
     \"strict\":%b,\"benchmarks\":[\n"
    (Pool.default_jobs ()) dim_repeats strict;
  List.iteri
    (fun i (name, grid, q_points, q_exp, paths_points, paths_exp, vs_seed) ->
      let cell c =
        let counters =
          if c.c_counters = [] then ""
          else
            Printf.sprintf ",\"counters\":{%s}"
              (String.concat ","
                 (List.map
                    (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v)
                    c.c_counters))
        in
        Printf.sprintf
          "{\"engine\":\"%s\",\"quality\":%d,\"jobs\":%d,\
           \"inter_cache\":%b,\"max_paths\":%d,\"paths\":%d,\
           \"wall_s\":%.4f,\"minor_words\":%.0f%s}"
          c.c_engine c.c_q c.c_jobs c.c_cache c.c_max_paths c.c_paths c.c_wall
          c.c_minor counters
      in
      let points ps =
        String.concat ","
          (List.map (fun (x, w) -> Printf.sprintf "[%d,%.4f]" x w) ps)
      in
      let json_exp e =
        if Float.is_nan e then "null" else Printf.sprintf "%.3f" e
      in
      out "  {\"name\":\"%s\",\"grid\":[\n    %s\n  ],\n" name
        (String.concat ",\n    " (List.map cell grid));
      out
        "   \"fits\":{\"q_exponent\":%s,\"q_points\":[%s],\
         \"paths_exponent\":%s,\"paths_points\":[%s]}%s}%s\n"
        (json_exp q_exp) (points q_points) (json_exp paths_exp)
        (points paths_points)
        (match vs_seed with
        | Some (seed, wall, speedup) ->
            Printf.sprintf
              ",\n   \"vs_seed\":{\"seed_cached_wall_s\":%.4f,\
               \"wall_s\":%.4f,\"speedup\":%.3f}"
              seed wall speedup
        | None -> "")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "]}\n";
  close_out oc;
  Fmt.pr "  wrote BENCH_dim.json@.";
  match !failures with
  | [] -> ()
  | fs ->
      List.iter (fun f -> Fmt.epr "  FAIL: %s@." f) fs;
      failwith "dim assertions failed"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per artifact.                 *)

let bechamel_suite () =
  section "Bechamel kernel timings (one representative kernel per artifact)";
  let open Bechamel in
  let open Toolkit in
  (* Pre-built inputs shared by the kernels. *)
  let c432, pl432 = Iscas85.build_placed (spec_exn "c432") in
  let sta432 = Sta.analyze c432 in
  let ctx432 = Path_analysis.context Config.default sta432.Sta.graph pl432 in
  let tables = Inter.tables Config.default in
  let coeffs =
    Ssta_correlation.Path_coeffs.of_path sta432.Sta.graph pl432
      (Config.layers_for Config.default pl432)
      sta432.Sta.critical_path
  in
  let g1 = Dist.truncated_gaussian ~n:100 ~mu:0.0 ~sigma:1.0 () in
  let c1355, _ = Iscas85.build_placed (spec_exn "c1355") in
  let sta1355 = Sta.analyze c1355 in
  let sampler = Monte_carlo.sampler Config.default sta432.Sta.graph pl432 in
  let rng = Rng.create 7 in
  let tests =
    [ Test.make ~name:"table1-sensitivity"
        (Staged.stage (fun () -> Sensitivity.table1 ()));
      Test.make ~name:"table2-path-analysis-c432"
        (Staged.stage (fun () ->
             Path_analysis.analyze ctx432 sta432.Sta.critical_path));
      Test.make ~name:"table3-intra-variance"
        (Staged.stage (fun () -> Intra.variance Config.default coeffs));
      Test.make ~name:"fig3-inter-pdf-q50"
        (Staged.stage (fun () -> Inter.of_coeffs tables coeffs));
      Test.make ~name:"fig4-convolution-q100"
        (Staged.stage (fun () -> Combine.sum g1 g1));
      Test.make ~name:"fig5-bellman-ford-c1355"
        (Staged.stage (fun () ->
             Ssta_timing.Longest_path.bellman_ford sta1355.Sta.graph));
      Test.make ~name:"fig6-near-critical-enum-c1355"
        (Staged.stage (fun () ->
             Sta.near_critical ~max_paths:200 sta1355
               ~slack:(0.001 *. sta1355.Sta.critical_delay)));
      Test.make ~name:"quality-quantile"
        (Staged.stage (fun () -> Pdf.quantile g1 0.999));
      Test.make ~name:"mc-one-path-sample"
        (Staged.stage (fun () ->
             Monte_carlo.path_delay_samples sampler ~n:1 rng
               sta432.Sta.critical_path));
      Test.make ~name:"block-clark-c432"
        (Staged.stage (fun () -> Block_based.analyze ~placement:pl432 c432))
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  Fmt.pr "%-35s %15s@." "kernel" "time/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let pretty =
            match Analyze.OLS.estimates est with
            | Some [ ns ] ->
                if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
                else Printf.sprintf "%.1f ns" ns
            | Some _ | None -> "n/a"
          in
          Fmt.pr "%-35s %15s@." (Test.Elt.name elt) pretty)
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)

let artifacts =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig3", fig3); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6);
    ("quality", quality); ("convexity", convexity);
    ("mc-validation", mc_validation); ("block-based", block_based);
    ("shapes", shapes); ("wires", wires);
    ("yield-criticality", yield_criticality); ("dual-vt", dual_vt);
    ("pipeline", pipeline); ("parallel", parallel); ("hotpath", hotpath);
    ("screening", screening); ("incremental", incremental);
    ("blockcross", blockcross); ("dim", dim) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_bechamel = List.mem "--no-bechamel" args in
  List.iter
    (fun a ->
      if String.length a > 7 && String.sub a 0 7 = "--only=" then
        hotpath_only :=
          String.split_on_char ','
            (String.sub a 7 (String.length a - 7))
      else if a = "--assert" then hotpath_assert := true)
    args;
  let wanted =
    List.filter
      (fun a -> String.length a < 2 || String.sub a 0 2 <> "--")
      args
  in
  let selected =
    if wanted = [] then artifacts
    else List.filter (fun (name, _) -> List.mem name wanted) artifacts
  in
  let started = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ()) selected;
  if not no_bechamel then bechamel_suite ();
  Fmt.pr "@.total bench wall-clock: %.1f s@." (Unix.gettimeofday () -. started)
